// Command loadgen is a load generator for discoveryd: it opens many
// connections, drives a mixed insert/lookup workload, and reports
// throughput and latency percentiles.
//
// Example:
//
//	loadgen -addr localhost:7700 -conns 8 -requests 20000 \
//	        -insert-ratio 0.1 -keys 5000 -value-size 32
//
// Each connection runs its own deterministic RNG stream (seed + conn
// index): a request is an insert with probability -insert-ratio and a
// lookup otherwise, over a shared key population. Inserted keys are
// findable by later lookups, so a long run converges to the steady-state
// hit rate of the configured overlay.
//
// # Closed loop vs open loop
//
// By default each connection is closed-loop: one outstanding request,
// the next sent when the previous returns, latency measured from actual
// send time. That measures server latency under self-throttling load —
// a slow server slows the generator down, hiding queueing delay
// (coordinated omission).
//
// With -rate R the generator is open-loop: request k has the fixed
// intended send time start + k/R, workers claim arrival slots from a
// shared schedule, and latency is measured from the INTENDED send time
// — a request that could not even be sent on schedule, because the
// server (or a worker stuck behind it) lagged, has its wait counted.
// Open-loop percentiles therefore answer "what would a client arriving
// at time t experience", which the closed-loop numbers cannot.
//
// With -cluster, -addr is a comma-separated seed list of cluster nodes
// and the same workload runs twice: once route-direct through the
// cluster-smart client (owners computed locally, one hop per request)
// and once relayed through the first seed like a cluster-unaware client
// (foreign keys take a second server-side hop). The two results print
// side by side. -rate applies to both phases.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"discovery/internal/cluster"
	"discovery/internal/idspace"
	"discovery/internal/metrics"
	"discovery/internal/server"
	"discovery/internal/wire"
)

func main() {
	os.Exit(run())
}

// requester is the request surface a workload drives; both the plain
// per-connection client and the shared cluster-smart client satisfy it.
type requester interface {
	Insert(origin int, key idspace.ID, value []byte) (wire.InsertReply, error)
	Lookup(origin int, key idspace.ID) (wire.LookupReply, error)
}

// connReport is one connection's contribution to the final report.
// Latency goes straight into the run's shared histogram (concurrent,
// lock-free); only the counts are per-connection.
type connReport struct {
	requests int
	inserts  int
	lookups  int
	found    int
	errs     int
	firstErr error
}

// report is the aggregate of one measured workload run. lat holds
// nanoseconds in a bounded log-scale histogram (internal/metrics): a
// million-request run costs the same fixed few KB as a hundred-request
// one, and tail quantiles stay within one bucket (<=12.5%) of exact.
type report struct {
	lat      *metrics.Histogram
	elapsed  time.Duration
	openLoop bool // latencies measured from intended send times
	total    int
	inserts  int
	lookups  int
	found    int
	errs     int
	first    error
}

func (r *report) throughput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.total) / r.elapsed.Seconds()
}

// us converts a histogram quantile (nanoseconds) to microseconds.
func (r *report) us(q float64) float64 { return r.lat.Quantile(q) / 1e3 }

func (r *report) print(indent string) {
	fmt.Printf("%sthroughput  %.0f req/s\n", indent, r.throughput())
	label := "latency"
	if r.openLoop {
		label = "latency*" // * = from intended send time (see footnote)
	}
	fmt.Printf("%s%-11s p50 %.0fµs  p95 %.0fµs  p99 %.0fµs  p99.9 %.0fµs  mean %.0fµs  max %.0fµs\n",
		indent, label, r.us(0.5), r.us(0.95), r.us(0.99), r.us(0.999), r.lat.Mean()/1e3, r.us(1))
	fmt.Printf("%smix         %d inserts, %d lookups (%d found", indent, r.inserts, r.lookups, r.found)
	if r.lookups > 0 {
		fmt.Printf(", %.1f%%", 100*float64(r.found)/float64(r.lookups))
	}
	fmt.Printf(")\n")
	if r.openLoop {
		fmt.Printf("%s            (* measured from each request's scheduled send time: queueing delay counts)\n", indent)
	}
}

// newLatHist allocates one run's latency histogram (nanosecond samples).
// Each run gets a private registry so repeated runs never merge.
func newLatHist() *metrics.Histogram {
	return metrics.NewRegistry().Histogram("loadgen.latency_seconds", 1e-9)
}

// doOne issues one request of the standard mix against c, updating r and
// returning the error (if any).
func doOne(c requester, rng *rand.Rand, insertRatio float64, keyIDs []idspace.ID, value []byte, r *connReport) error {
	key := keyIDs[rng.Intn(len(keyIDs))]
	if rng.Float64() < insertRatio {
		_, err := c.Insert(server.OriginAuto, key, value)
		r.inserts++
		return err
	}
	res, err := c.Lookup(server.OriginAuto, key)
	r.lookups++
	if err == nil && res.Found {
		r.found++
	}
	return err
}

// merge folds the per-connection counts into the aggregate report.
func merge(agg *report, reports []connReport) {
	for i := range reports {
		r := &reports[i]
		agg.total += r.requests
		agg.inserts += r.inserts
		agg.lookups += r.lookups
		agg.found += r.found
		agg.errs += r.errs
		if agg.first == nil {
			agg.first = r.firstErr
		}
	}
}

// runWorkload drives the standard closed-loop mix over conns workers,
// each using the requester from dial(ci). The returned report merges
// every worker.
func runWorkload(conns, requests int, insertRatio float64, keyIDs []idspace.ID, value []byte, seed int64,
	dial func(ci int) (requester, func(), error)) report {
	reports := make([]connReport, conns)
	lat := newLatHist()
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < conns; ci++ {
		per := requests / conns
		if ci < requests%conns {
			per++
		}
		wg.Add(1)
		go func(ci, per int) {
			defer wg.Done()
			r := &reports[ci]
			c, closeFn, err := dial(ci)
			if err != nil {
				r.errs++
				r.firstErr = err
				return
			}
			defer closeFn()
			rng := rand.New(rand.NewSource(seed + int64(ci)))
			for i := 0; i < per; i++ {
				t0 := time.Now()
				err := doOne(c, rng, insertRatio, keyIDs, value, r)
				lat.Observe(int64(time.Since(t0)))
				r.requests++
				if err != nil {
					r.errs++
					if r.firstErr == nil {
						r.firstErr = err
					}
					return
				}
			}
		}(ci, per)
	}
	wg.Wait()

	agg := report{lat: lat, elapsed: time.Since(start)}
	merge(&agg, reports)
	return agg
}

// runOpenLoop drives the mix at a fixed arrival rate: request k's
// intended send time is start + k/rate, workers claim arrival slots from
// a shared atomic counter, and latency is measured from the intended
// time — so a request delayed because every worker was stuck behind a
// slow server still shows its full wait in the percentiles (no
// coordinated omission). conns bounds in-flight requests; if the server
// cannot sustain the rate, the schedule slips and the slip is measured,
// not hidden.
func runOpenLoop(conns, requests int, rate, insertRatio float64, keyIDs []idspace.ID, value []byte, seed int64,
	dial func(ci int) (requester, func(), error)) report {
	reports := make([]connReport, conns)
	lat := newLatHist()
	interval := time.Duration(float64(time.Second) / rate)
	var next atomic.Int64
	var wg sync.WaitGroup
	// Small lead so the earliest arrivals aren't already late before the
	// workers finish dialing.
	start := time.Now().Add(20 * time.Millisecond)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			r := &reports[ci]
			c, closeFn, err := dial(ci)
			if err != nil {
				r.errs++
				r.firstErr = err
				return
			}
			defer closeFn()
			rng := rand.New(rand.NewSource(seed + int64(ci)))
			for {
				k := next.Add(1) - 1
				if k >= int64(requests) {
					return
				}
				intended := start.Add(time.Duration(k) * interval)
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				err := doOne(c, rng, insertRatio, keyIDs, value, r)
				lat.Observe(int64(time.Since(intended)))
				r.requests++
				if err != nil {
					r.errs++
					if r.firstErr == nil {
						r.firstErr = err
					}
					return
				}
			}
		}(ci)
	}
	wg.Wait()

	agg := report{lat: lat, elapsed: time.Since(start), openLoop: true}
	merge(&agg, reports)
	return agg
}

// runPhase picks the loop discipline: open-loop when rate > 0, else
// closed-loop.
func runPhase(conns, requests int, rate, insertRatio float64, keyIDs []idspace.ID, value []byte, seed int64,
	dial func(ci int) (requester, func(), error)) report {
	if rate > 0 {
		return runOpenLoop(conns, requests, rate, insertRatio, keyIDs, value, seed, dial)
	}
	return runWorkload(conns, requests, insertRatio, keyIDs, value, seed, dial)
}

func run() int {
	var (
		addr        = flag.String("addr", "localhost:7700", "discoveryd address (with -cluster: comma-separated seed list)")
		clusterMode = flag.Bool("cluster", false, "drive a multi-node cluster: run the workload route-direct (cluster-smart client) and relayed (one entry node), report side by side")
		conns       = flag.Int("conns", 8, "concurrent connections (with -rate: max in-flight requests)")
		requests    = flag.Int("requests", 20000, "total requests across all connections")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop); latency is measured from each request's scheduled send time, so server-induced queueing counts (no coordinated omission)")
		insertRatio = flag.Float64("insert-ratio", 0.1, "fraction of requests that are inserts")
		keys        = flag.Int("keys", 5000, "key population size")
		valueSize   = flag.Int("value-size", 32, "insert payload bytes")
		seed        = flag.Int64("seed", 1, "workload seed (connection i uses seed+i)")
		preload     = flag.Int("preload", 0, "insert N keys (round-robin over the population) before the measured window")
		scrapeURL   = flag.String("scrape-url", "", "a daemon /metrics URL to poll during the run (empty = no scraping)")
		scrapeEvery = flag.Duration("scrape-every", time.Second, "metrics scrape interval")
		scrapeOut   = flag.String("scrape-out", "", "file for the scraped JSON metrics timeline (empty = print to stdout)")
		traceEvery  = flag.Int("trace-every", 0, "stamp every Nth route-direct request with a trace ID (0 = off; needs -cluster)")
		traceURLs   = flag.String("trace-urls", "", "comma-separated metrics-listen base URLs (http://host:port) to fetch /debug/traces from for exemplar dumps")
	)
	flag.Parse()
	if *conns < 1 || *requests < 1 || *keys < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -conns, -requests and -keys must be positive")
		return 2
	}
	if *insertRatio < 0 || *insertRatio > 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -insert-ratio must be in [0,1]")
		return 2
	}
	if *valueSize < 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -value-size must be non-negative")
		return 2
	}
	if *rate < 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -rate must be non-negative")
		return 2
	}
	if *traceEvery > 0 && !*clusterMode {
		// Only TRoute envelopes carry the trace trailer, so client-side
		// stamping needs the cluster-smart route-direct path.
		fmt.Fprintln(os.Stderr, "loadgen: -trace-every requires -cluster (trace IDs ride the TRoute trailer)")
		return 2
	}

	// Pre-hash the key population so key derivation is off the timed path.
	keyIDs := make([]idspace.ID, *keys)
	for i := range keyIDs {
		keyIDs[i] = idspace.FromString(fmt.Sprintf("loadgen-key-%d", i))
	}
	value := make([]byte, *valueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	// The scraper spans the measured phases (preload included: its
	// trajectory is often what explains the first measured samples).
	var scr *scraper
	if *scrapeURL != "" {
		scr = startScraper(*scrapeURL, *scrapeEvery)
	}
	finishScrape := func() {
		if scr == nil {
			return
		}
		if err := writeTimeline(*scrapeOut, scr.finish(), scr.errs); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: metrics timeline: %v\n", err)
		}
	}

	if *clusterMode {
		code := runCluster(*addr, *conns, *requests, *rate, *insertRatio, *seed, *preload, keyIDs, value,
			*traceEvery, splitList(*traceURLs))
		finishScrape()
		return code
	}

	// Warm-up phase: populate the store before the measured window so
	// lookup hit rates reflect steady state, not a cold daemon. Preload
	// time is reported separately and excluded from throughput.
	if *preload > 0 {
		if err := preloadKeys(*preload, *conns, keyIDs, value, func(int) (requester, func(), error) {
			c, err := server.Dial(*addr)
			if err != nil {
				return nil, nil, err
			}
			return c, func() { c.Close() }, nil
		}); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: preload: %v\n", err)
			return 1
		}
	}

	agg := runPhase(*conns, *requests, *rate, *insertRatio, keyIDs, value, *seed, func(int) (requester, func(), error) {
		c, err := server.Dial(*addr)
		if err != nil {
			return nil, nil, err
		}
		return c, func() { c.Close() }, nil
	})

	if *rate > 0 {
		fmt.Printf("loadgen: %d requests at %.0f req/s open-loop over %d conns in %s\n",
			agg.total, *rate, *conns, agg.elapsed.Round(time.Millisecond))
	} else {
		fmt.Printf("loadgen: %d requests over %d conns in %s\n", agg.total, *conns, agg.elapsed.Round(time.Millisecond))
	}
	if agg.total > 0 {
		agg.print("  ")
	}
	finishScrape()
	if agg.errs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d errors (first: %v)\n", agg.errs, agg.first)
		return 1
	}
	return 0
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// preloadKeys inserts n keys round-robin over the population using one
// requester per connection, off the measured clock.
func preloadKeys(n, conns int, keyIDs []idspace.ID, value []byte, dial func(int) (requester, func(), error)) error {
	t0 := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, closeFn, err := dial(ci)
			if err != nil {
				errs[ci] = err
				return
			}
			defer closeFn()
			for i := ci; i < n; i += conns {
				if _, err := c.Insert(server.OriginAuto, keyIDs[i%len(keyIDs)], value); err != nil {
					errs[ci] = err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	pd := time.Since(t0)
	fmt.Printf("loadgen: preloaded %d inserts in %s (%.0f req/s, not measured)\n",
		n, pd.Round(time.Millisecond), float64(n)/pd.Seconds())
	return nil
}

// runCluster runs the workload twice against a cluster — route-direct
// through the cluster-smart client, then relayed through the first seed
// — and reports the two side by side. With traceEvery > 0, every Nth
// route-direct request is stamped with a trace ID and the slowest
// stamped requests are matched against the nodes' /debug/traces output.
func runCluster(addrList string, conns, requests int, rate, insertRatio float64, seed int64, preload int,
	keyIDs []idspace.ID, value []byte, traceEvery int, traceURLs []string) int {
	seeds := splitList(addrList)
	if len(seeds) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -cluster needs at least one seed in -addr")
		return 2
	}
	cc, err := cluster.Dial(cluster.Config{Seeds: seeds})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	defer cc.Close()
	hash, members := cc.Members()
	known := 0
	for _, m := range members {
		if m != "" {
			known++
		}
	}
	fmt.Printf("loadgen: cluster of %d members (%d addresses known, fingerprint %016x)\n", len(members), known, hash)

	if preload > 0 {
		if err := preloadKeys(preload, conns, keyIDs, value, func(int) (requester, func(), error) {
			return cc, func() {}, nil
		}); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: preload: %v\n", err)
			return 1
		}
	}

	// Route-direct: all workers multiplex onto the shared cluster-smart
	// client, whose per-node connections pipeline and coalesce.
	var tc *tracedClient
	var directReq requester = cc
	if traceEvery > 0 {
		tc = &tracedClient{inner: cc, every: int64(traceEvery)}
		directReq = tc
	}
	direct := runPhase(conns, requests, rate, insertRatio, keyIDs, value, seed, func(int) (requester, func(), error) {
		return directReq, func() {}, nil
	})
	st := cc.Stats()
	if tc != nil {
		dumpExemplars(traceURLs, tc.worst(5))
	}

	// Relay: the identical workload, cluster-unaware, through seed 0.
	relay := runPhase(conns, requests, rate, insertRatio, keyIDs, value, seed, func(int) (requester, func(), error) {
		c, err := server.Dial(seeds[0])
		if err != nil {
			return nil, nil, err
		}
		return c, func() { c.Close() }, nil
	})

	mode := ""
	if rate > 0 {
		mode = fmt.Sprintf(" at %.0f req/s open-loop", rate)
	}
	fmt.Printf("loadgen: route-direct%s — %d requests over %d conns in %s (%d routed, %d relayed, %d refreshes)\n",
		mode, direct.total, conns, direct.elapsed.Round(time.Millisecond), st.Routed, st.Relayed, st.Refreshes)
	direct.print("  ")
	fmt.Printf("loadgen: relay via %s%s — %d requests over %d conns in %s\n",
		seeds[0], mode, relay.total, conns, relay.elapsed.Round(time.Millisecond))
	relay.print("  ")
	if relay.throughput() > 0 {
		fmt.Printf("loadgen: route-direct / relay throughput ratio: %.2fx\n", direct.throughput()/relay.throughput())
	}
	if direct.errs+relay.errs > 0 {
		first := direct.first
		if first == nil {
			first = relay.first
		}
		fmt.Fprintf(os.Stderr, "loadgen: %d errors (first: %v)\n", direct.errs+relay.errs, first)
		return 1
	}
	return 0
}
