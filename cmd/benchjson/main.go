// Command benchjson converts `go test -bench` text output (the format
// benchstat consumes) into machine-readable JSON, for CI artifacts that
// trend performance across PRs:
//
//	go test -run '^$' -bench . -benchmem ./internal/server | tee bench.txt
//	benchjson < bench.txt > BENCH.json
//
// The output object carries the run's environment header (goos, goarch,
// pkg, cpu) and one entry per benchmark line: the name, the iteration
// count, and every reported metric keyed by its unit (ns/op, B/op,
// allocs/op, and custom b.ReportMetric units like req/s). Non-benchmark
// lines (PASS, ok, coverage) are ignored, so piping a whole `go test`
// run through is fine. Multiple packages' headers merge last-wins for
// the environment; every benchmark line is kept.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the whole converted run.
type Output struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes bench text lines and collects headers and results.
func parse(sc *bufio.Scanner) (Output, error) {
	out := Output{Benchmarks: []Benchmark{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue // a benchmark that printed its own text; skip
			}
			b.Pkg = pkg
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	return out, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   12345   987 ns/op   11 B/op   2 allocs/op
//
// i.e. name, iterations, then (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
