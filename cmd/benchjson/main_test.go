package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchText(t *testing.T) {
	const text = `goos: linux
goarch: amd64
pkg: discovery/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDaemonThroughput 	  132286	     19558 ns/op	     51131 req/s	     559 B/op	       6 allocs/op
BenchmarkDaemonMixed-4    	   73910	     34925 ns/op	    1687 B/op	      19 allocs/op
--- FAIL: BenchmarkBroken
PASS
ok  	discovery/internal/server	13.289s
`
	out, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	if out.Goos != "linux" || out.Goarch != "amd64" || !strings.Contains(out.CPU, "Xeon") {
		t.Fatalf("environment header mangled: %+v", out)
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(out.Benchmarks))
	}
	b := out.Benchmarks[0]
	if b.Name != "BenchmarkDaemonThroughput" || b.Iterations != 132286 || b.Pkg != "discovery/internal/server" {
		t.Fatalf("first benchmark mangled: %+v", b)
	}
	for unit, want := range map[string]float64{"ns/op": 19558, "req/s": 51131, "B/op": 559, "allocs/op": 6} {
		if b.Metrics[unit] != want {
			t.Fatalf("metric %s = %v, want %v", unit, b.Metrics[unit], want)
		}
	}
	if out.Benchmarks[1].Name != "BenchmarkDaemonMixed-4" || out.Benchmarks[1].Metrics["ns/op"] != 34925 {
		t.Fatalf("second benchmark mangled: %+v", out.Benchmarks[1])
	}
}

func TestParseRejectsOddLines(t *testing.T) {
	for _, line := range []string{
		"BenchmarkHalfPair 10 42",      // dangling value without a unit
		"BenchmarkNoIters ns/op",       // no iteration count
		"BenchmarkBadValue 10 x ns/op", // unparsable value
		"BenchmarkNameOnly",            // nothing else
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("parseBenchLine accepted %q", line)
		}
	}
}
