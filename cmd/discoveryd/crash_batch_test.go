package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/server"
	"discovery/internal/wire"
)

// TestCrashRecoveryBatchedWrites is the batched write-ahead contract
// proven end to end: pipelined clients push bursts of inserts AND
// deletes (bursts arrive together, so shard workers execute them as
// batches sharing one multi-record WAL append and one fsync), the
// daemon is SIGKILLed mid-traffic, and after restart
//
//   - every ACKED insert whose key no delete was ever SENT for is
//     findable (no acked mutation lost mid-batch), and
//   - every ACKED delete stays deleted (no unacked or superseded state
//     falsely resurfaces from a half-applied batch).
//
// Requests in flight at the kill have unknown outcome by contract — a
// delete that was sent but never acknowledged may well have executed
// and been logged (only its ack died with the process), so keys with an
// unacknowledged delete outstanding are asserted on neither side.
func TestCrashRecoveryBatchedWrites(t *testing.T) {
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	daemon, addr, _ := startDaemon(t, bin, dataDir)

	const workers = 3
	const burst = 16
	const killAfterInserts = 240
	var ackedInserts atomic.Int64

	type workerState struct {
		inserted   []string // acked inserts, in order
		deleted    []string // acked deletes
		delUnknown []string // deletes sent but never acked: unknown outcome
	}
	states := make([]workerState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			defer c.Close()
			st := &states[w]
			type pendingOp struct {
				del bool
				key string
			}
			pending := make(map[uint64]pendingOp, 2*burst)
			// On exit (the kill), whatever deletes are still pending have
			// unknown outcome; record them for the verifier to skip.
			defer func() {
				for _, op := range pending {
					if op.del {
						st.delUnknown = append(st.delUnknown, op.key)
					}
				}
			}()
			var m wire.Msg
			for round := 0; ; round++ {
				// A burst of pipelined inserts: these land on the shard
				// queues together and execute as batches.
				for i := 0; i < burst; i++ {
					key := fmt.Sprintf("bb-%d-%d-%d", w, round, i)
					id, err := c.Send(&wire.Msg{Type: wire.TInsert, Key: discovery.NewID(key), Origin: wire.OriginAuto, Value: []byte(key)})
					if err != nil {
						return
					}
					pending[id] = pendingOp{key: key}
				}
				// Every third round, also delete the first half of the
				// previous round's acked inserts in the same flush.
				var dels []string
				if round%3 == 2 && len(st.inserted) >= burst {
					dels = st.inserted[len(st.inserted)-burst : len(st.inserted)-burst/2]
					for _, key := range dels {
						id, err := c.Send(&wire.Msg{Type: wire.TDelete, Key: discovery.NewID(key), Origin: wire.OriginAuto})
						if err != nil {
							return
						}
						pending[id] = pendingOp{del: true, key: key}
					}
				}
				if err := c.Flush(); err != nil {
					return
				}
				for n := len(pending); n > 0; n-- {
					if err := c.Recv(&m); err != nil {
						return // the kill landed mid-burst; acked state stands
					}
					op, ok := pending[m.ReqID]
					if !ok {
						t.Errorf("worker %d: response for unknown reqID %d", w, m.ReqID)
						return
					}
					delete(pending, m.ReqID)
					switch m.Type {
					case wire.TInsertOK:
						st.inserted = append(st.inserted, op.key)
						ackedInserts.Add(1)
					case wire.TDeleteOK:
						st.deleted = append(st.deleted, op.key)
					default:
						t.Errorf("worker %d: %v response: %s", w, m.Type, m.ErrorText())
						return
					}
				}
			}
		}(w)
	}

	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	deadline := time.Now().Add(60 * time.Second)
	for ackedInserts.Load() < killAfterInserts {
		select {
		case <-workersDone:
			t.Fatalf("workers exited after only %d acked inserts", ackedInserts.Load())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d acked inserts after 60s", ackedInserts.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := daemon.Process.Kill(); err != nil { // SIGKILL mid-batch
		t.Fatal(err)
	}
	wg.Wait()
	daemon.Wait() //nolint:errcheck // killed on purpose

	_, addr2, _ := startDaemon(t, bin, dataDir)
	c, err := server.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inserts, deletes, lostInserts, resurrected := 0, 0, 0, 0
	for w := range states {
		st := &states[w]
		gone := make(map[string]bool, len(st.deleted))
		for _, key := range st.deleted {
			gone[key] = true
		}
		unknown := make(map[string]bool, len(st.delUnknown))
		for _, key := range st.delUnknown {
			unknown[key] = true
		}
		for _, key := range st.inserted {
			if gone[key] || unknown[key] {
				continue
			}
			inserts++
			res, err := c.Lookup(server.OriginAuto, discovery.NewID(key))
			if err != nil {
				t.Fatalf("lookup %s: %v", key, err)
			}
			if !res.Found {
				lostInserts++
				t.Errorf("acked insert %s not findable after batched crash recovery", key)
			}
		}
		for _, key := range st.deleted {
			deletes++
			res, err := c.Lookup(server.OriginAuto, discovery.NewID(key))
			if err != nil {
				t.Fatalf("lookup deleted %s: %v", key, err)
			}
			if res.Found {
				resurrected++
				t.Errorf("acked delete %s resurfaced after batched crash recovery", key)
			}
		}
	}
	t.Logf("verified %d acked inserts (%d lost) and %d acked deletes (%d resurfaced) after SIGKILL", inserts, lostInserts, deletes, resurrected)
	if inserts < killAfterInserts/2 || deletes == 0 {
		t.Fatalf("thin coverage: %d inserts, %d deletes verified — test did not exercise mixed batches", inserts, deletes)
	}
}
