package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/server"
)

// buildDaemon compiles the discoveryd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "discoveryd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

var addrRe = regexp.MustCompile(` on (127\.0\.0\.1:\d+) with `)

var metricsRe = regexp.MustCompile(`metrics on http://(127\.0\.0\.1:\d+)/metrics`)

// startDaemon launches the built daemon on an ephemeral port over a
// small complete overlay (structural lookup success) with durable
// storage in dataDir, and returns the bound client and metrics
// addresses.
func startDaemon(t *testing.T, bin, dataDir string) (*exec.Cmd, string, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-topology", "complete", "-nodes", "128", "-maxhops", "8",
		"-shards", "4",
		"-data-dir", dataDir, "-fsync", "batch", "-snapshot-every", "64",
		"-metrics-listen", "127.0.0.1:0",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	metricsCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("daemon: %s", line)
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if m := metricsRe.FindStringSubmatch(line); m != nil {
				select {
				case metricsCh <- m[1]:
				default:
				}
			}
		}
	}()
	// Reap the process and drain its log scanner no matter how the test
	// exits. Kill/Wait on an already-finished daemon just error, which
	// is fine; the scanner ends once the pipe closes.
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		<-scanDone
	})
	var addr, maddr string
	deadline := time.After(30 * time.Second)
	for addr == "" || maddr == "" {
		select {
		case addr = <-addrCh:
		case maddr = <-metricsCh:
		case <-deadline:
			t.Fatalf("daemon never reported its addresses (client %q, metrics %q)", addr, maddr)
		}
	}
	return cmd, addr, maddr
}

// TestCrashRecovery is the end-to-end durability proof: drive a real
// discoveryd process over loopback, SIGKILL it mid-traffic, restart it
// on the same data directory, and verify every insert that was
// acknowledged before the kill is findable. Run under -race in CI (the
// race detector instruments this test binary's client side; the daemon
// is a separate process).
func TestCrashRecovery(t *testing.T) {
	bin := buildDaemon(t)
	dataDir := t.TempDir()

	daemon, addr, _ := startDaemon(t, bin, dataDir)

	// Concurrent inserters record every acknowledged key. The main
	// goroutine SIGKILLs the daemon once enough acks are in, while the
	// inserters are still pushing — so the kill lands mid-traffic.
	const inserters = 4
	const killAfter = 300
	var acked atomic.Int64
	ackedKeys := make([][]string, inserters)
	var wg sync.WaitGroup
	for w := 0; w < inserters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				t.Errorf("inserter %d: %v", w, err)
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				key := fmt.Sprintf("crash-%d-%d", w, i)
				if _, err := c.Insert(server.OriginAuto, discovery.NewID(key), []byte(key)); err != nil {
					return // the kill landed; everything before it was acked
				}
				ackedKeys[w] = append(ackedKeys[w], key)
				acked.Add(1)
			}
		}(w)
	}
	// Wait for enough acks, but bail out if the inserters die early (a
	// failed dial, a dead daemon) instead of spinning until the package
	// timeout.
	insertersDone := make(chan struct{})
	go func() { wg.Wait(); close(insertersDone) }()
	deadline := time.Now().Add(60 * time.Second)
	for acked.Load() < killAfter {
		select {
		case <-insertersDone:
			t.Fatalf("inserters exited after only %d acks", acked.Load())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d acks after 60s", acked.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := daemon.Process.Kill(); err != nil { // SIGKILL: no drain, no final snapshot
		t.Fatal(err)
	}
	wg.Wait()
	daemon.Wait() //nolint:errcheck // killed on purpose

	// Restart on the same directory: recovery must replay the log over
	// whatever snapshots the background snapshotter managed to land.
	daemon2, addr2, maddr2 := startDaemon(t, bin, dataDir)

	c, err := server.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	total, lost := 0, 0
	for w := range ackedKeys {
		for _, key := range ackedKeys[w] {
			total++
			res, err := c.Lookup(server.OriginAuto, discovery.NewID(key))
			if err != nil {
				t.Fatalf("lookup %s: %v", key, err)
			}
			if !res.Found {
				lost++
				t.Errorf("acked key %s not findable after crash recovery", key)
			}
		}
	}
	t.Logf("verified %d acked inserts after SIGKILL (%d lost)", total, lost)
	if total < killAfter {
		t.Fatalf("only %d inserts were acked before the kill; test did not exercise mid-traffic crash", total)
	}

	// The restarted daemon's /metrics must expose what recovery did: the
	// SIGKILL skipped the final snapshot, so snapshots plus replayed WAL
	// records account for a nonzero amount of restored state.
	resp, err := http.Get("http://" + maddr2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape restarted daemon: HTTP %d, err %v", resp.StatusCode, err)
	}
	recovered := 0.0
	for _, g := range []string{"recovery_snapshot_entries", "recovery_wal_records_replayed"} {
		re := regexp.MustCompile(`(?m)^` + g + ` (\d+)$`)
		m := re.FindSubmatch(body)
		if m == nil {
			t.Fatalf("restarted daemon /metrics is missing %s:\n%s", g, body)
		}
		v, _ := strconv.ParseFloat(string(m[1]), 64)
		recovered += v
	}
	if recovered == 0 {
		t.Fatal("restarted daemon reports zero recovered state despite acked inserts before SIGKILL")
	}
	t.Logf("restart scrape: %v entries+records recovered", recovered)

	// A graceful SIGTERM must drain cleanly and exit 0 (containers stop
	// daemons this way).
	if err := daemon2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon2.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
}
