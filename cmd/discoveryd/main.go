// Command discoveryd serves MPIL discovery over TCP with the
// internal/wire binary protocol: insert, lookup, delete, and stats
// requests against a shard-per-core pool of engines sharing one overlay.
//
// Example:
//
//	discoveryd -listen :7700 -topology random -nodes 2000 -degree 20 \
//	           -overlay-seed 42 -shards 4 -maxflows 10 -replicas 5 \
//	           -data-dir /var/lib/discoveryd -fsync batch -snapshot-every 10000
//
// The overlay is generated at startup from the spec flags and never
// mutates while serving; requests are partitioned across shards by
// hashing the key, so results are deterministic per (seed, shard count)
// for any fixed per-shard request order. See the README's "Running the
// daemon" section for the shard and backpressure model.
//
// With -data-dir set, every insert and delete is written ahead to a
// checksummed log (and fsynced per -fsync) before it executes, and
// shard snapshots every -snapshot-every mutations keep the log short.
// Restarting on the same directory recovers every acknowledged mutation
// — including after a SIGKILL or machine crash. See the README's
// "Persistence & recovery" section.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	discovery "discovery"
	"discovery/internal/metrics"
	"discovery/internal/server"
	"discovery/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen      = flag.String("listen", ":7700", "TCP listen address")
		topo        = flag.String("topology", "random", "overlay family: random, powerlaw, complete")
		nodes       = flag.Int("nodes", 2000, "overlay size")
		degree      = flag.Int("degree", 20, "degree of random overlays")
		overlaySeed = flag.Int64("overlay-seed", 42, "overlay generation seed")
		shards      = flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 128, "per-shard request queue depth")
		batch       = flag.Int("batch", 64, "max requests one shard worker executes per batch (shared WAL commit)")
		coFrames    = flag.Int("coalesce-frames", 64, "max response frames per vectored write")
		coBytes     = flag.Int("coalesce-bytes", 256<<10, "approximate max bytes per vectored write")
		seed        = flag.Int64("seed", 1, "base engine seed (shard i uses seed+i)")
		maxFlows    = flag.Int("maxflows", 10, "max_flows per request")
		replicas    = flag.Int("replicas", 5, "per-flow replicas")
		digitB      = flag.Int("b", 4, "digit width in bits (1, 2, 4, 8)")
		ds          = flag.Bool("ds", false, "duplicate suppression")
		maxHops     = flag.Int("maxhops", 0, "per-flow hop bound (0 = node count)")
		dataDir     = flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
		fsync       = flag.String("fsync", "batch", "wal fsync policy: always, batch, off")
		snapEvery   = flag.Int("snapshot-every", 10000, "snapshot a shard after N logged mutations (0 = only on shutdown)")
		metricsAddr = flag.String("metrics-listen", "", "HTTP listen address serving /metrics (Prometheus text), /debug/pprof, /debug/vars and /debug/traces (empty = disabled)")
		traceSample = flag.Int("trace-sample", 0, "trace 1 in N client requests (0 = tracing off)")
		traceSlow   = flag.Duration("trace-slow", 0, "log a rate-limited span breakdown for keyed requests slower than this (0 = off; requires -trace-sample)")
	)
	flag.Parse()

	var ov *discovery.StaticOverlay
	var err error
	switch *topo {
	case "random":
		ov, err = discovery.RandomOverlay(*nodes, *degree, *overlaySeed)
	case "powerlaw":
		ov, err = discovery.PowerLawOverlay(*nodes, *overlaySeed)
	case "complete":
		ov, err = discovery.CompleteOverlay(*nodes, *overlaySeed)
	default:
		err = fmt.Errorf("unknown topology %q", *topo)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoveryd:", err)
		return 2
	}

	// One process-wide registry: pool, WAL, and server all register into
	// it, so TStats and a /metrics scrape read the same atomics and can
	// never disagree.
	reg := metrics.NewRegistry()

	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{SampleEvery: *traceSample})
	}

	opts := []discovery.Option{
		discovery.WithMetrics(reg),
		discovery.WithSeed(*seed),
		discovery.WithMaxFlows(*maxFlows),
		discovery.WithPerFlowReplicas(*replicas),
		discovery.WithDigitBits(*digitB),
		discovery.WithDuplicateSuppression(*ds),
	}
	if *maxHops > 0 {
		opts = append(opts, discovery.WithMaxHops(*maxHops))
	}

	var pool *discovery.Pool
	var store io.Closer
	if *dataDir != "" {
		policy, err := discovery.ParseFsyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discoveryd:", err)
			return 2
		}
		dp, rec, err := discovery.OpenDurablePool(ov, *shards, discovery.DurableConfig{
			Dir:           *dataDir,
			Fsync:         policy,
			SnapshotEvery: *snapEvery,
			Logf:          log.Printf,
		}, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discoveryd:", err)
			return 2
		}
		pool, store = dp.Pool, dp
		log.Printf("discoveryd: recovered %s: %d snapshot entries, %d wal records replayed in %s (fsync=%s, snapshot-every=%d)",
			*dataDir, rec.SnapshotEntries, rec.Replayed, rec.Elapsed.Round(time.Millisecond), policy, *snapEvery)
		reg.Gauge("recovery.snapshot_entries").Set(int64(rec.SnapshotEntries))
		reg.Gauge("recovery.wal_records_replayed").Set(int64(rec.Replayed))
		reg.Gauge("recovery.millis").Set(rec.Elapsed.Milliseconds())
	} else {
		pool, err = discovery.NewPool(ov, *shards, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discoveryd:", err)
			return 2
		}
	}

	srv, err := server.New(server.Config{
		Pool:           pool,
		QueueDepth:     *queue,
		MaxBatch:       *batch,
		CoalesceFrames: *coFrames,
		CoalesceBytes:  *coBytes,
		Store:          store,
		Logf:           log.Printf,
		Metrics:        reg,
		Tracer:         tracer,
		SlowThreshold:  *traceSlow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoveryd:", err)
		return 2
	}
	addr, err := srv.Start(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoveryd:", err)
		return 1
	}
	log.Printf("discoveryd: serving %s overlay (%d nodes) on %s with %d shards (queue %d)",
		*topo, ov.N(), addr, pool.NumShards(), *queue)

	if *metricsAddr != "" {
		mux := reg.Mux()
		mux.Handle("/debug/traces", tracer.Handler()) // 404s when tracing is off
		maddr, stopMetrics, err := metrics.ServeMux(*metricsAddr, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discoveryd:", err)
			return 1
		}
		defer stopMetrics()
		log.Printf("discoveryd: metrics on http://%s/metrics (pprof on /debug/pprof)", maddr)
	}

	// Containers send SIGTERM, terminals send SIGINT; both get the same
	// graceful drain (stop accepting, finish queued requests, seal the
	// store).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("discoveryd: received %v, draining", got)
	drainStart := time.Now()
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "discoveryd:", err)
		return 1
	}
	log.Printf("discoveryd: drained in %s", time.Since(drainStart).Round(time.Millisecond))
	st := pool.Stats()
	log.Printf("discoveryd: served %d requests (%d inserts, %d lookups, %d deletes; %d lookups found)",
		st.Requests, st.Inserts, st.Lookups, st.Deletes, st.LookupsFound)
	return 0
}
