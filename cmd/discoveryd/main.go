// Command discoveryd serves MPIL discovery over TCP with the
// internal/wire binary protocol: insert, lookup, delete, and stats
// requests against a shard-per-core pool of engines sharing one overlay.
//
// Example:
//
//	discoveryd -listen :7700 -topology random -nodes 2000 -degree 20 \
//	           -overlay-seed 42 -shards 4 -maxflows 10 -replicas 5
//
// The overlay is generated at startup from the spec flags and never
// mutates while serving; requests are partitioned across shards by
// hashing the key, so results are deterministic per (seed, shard count)
// for any fixed per-shard request order. See the README's "Running the
// daemon" section for the shard and backpressure model.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	discovery "discovery"
	"discovery/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen      = flag.String("listen", ":7700", "TCP listen address")
		topo        = flag.String("topology", "random", "overlay family: random, powerlaw, complete")
		nodes       = flag.Int("nodes", 2000, "overlay size")
		degree      = flag.Int("degree", 20, "degree of random overlays")
		overlaySeed = flag.Int64("overlay-seed", 42, "overlay generation seed")
		shards      = flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 128, "per-shard request queue depth")
		seed        = flag.Int64("seed", 1, "base engine seed (shard i uses seed+i)")
		maxFlows    = flag.Int("maxflows", 10, "max_flows per request")
		replicas    = flag.Int("replicas", 5, "per-flow replicas")
		digitB      = flag.Int("b", 4, "digit width in bits (1, 2, 4, 8)")
		ds          = flag.Bool("ds", false, "duplicate suppression")
		maxHops     = flag.Int("maxhops", 0, "per-flow hop bound (0 = node count)")
	)
	flag.Parse()

	var ov *discovery.StaticOverlay
	var err error
	switch *topo {
	case "random":
		ov, err = discovery.RandomOverlay(*nodes, *degree, *overlaySeed)
	case "powerlaw":
		ov, err = discovery.PowerLawOverlay(*nodes, *overlaySeed)
	case "complete":
		ov, err = discovery.CompleteOverlay(*nodes, *overlaySeed)
	default:
		err = fmt.Errorf("unknown topology %q", *topo)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoveryd:", err)
		return 2
	}

	opts := []discovery.Option{
		discovery.WithSeed(*seed),
		discovery.WithMaxFlows(*maxFlows),
		discovery.WithPerFlowReplicas(*replicas),
		discovery.WithDigitBits(*digitB),
		discovery.WithDuplicateSuppression(*ds),
	}
	if *maxHops > 0 {
		opts = append(opts, discovery.WithMaxHops(*maxHops))
	}
	pool, err := discovery.NewPool(ov, *shards, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoveryd:", err)
		return 2
	}

	srv, err := server.New(server.Config{Pool: pool, QueueDepth: *queue, Logf: log.Printf})
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoveryd:", err)
		return 2
	}
	addr, err := srv.Start(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoveryd:", err)
		return 1
	}
	log.Printf("discoveryd: serving %s overlay (%d nodes) on %s with %d shards (queue %d)",
		*topo, ov.N(), addr, pool.NumShards(), *queue)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("discoveryd: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "discoveryd:", err)
		return 1
	}
	st := pool.Stats()
	log.Printf("discoveryd: served %d requests (%d inserts, %d lookups, %d deletes; %d lookups found)",
		st.Requests, st.Inserts, st.Lookups, st.Deletes, st.LookupsFound)
	return 0
}
