// Command repro regenerates the tables and figures of Ko & Gupta,
// "Perturbation-Resistant and Overlay-Independent Resource Discovery"
// (DSN 2005), printing the same rows/series the paper reports.
//
// Usage:
//
//	repro [-scale quick|medium|paper] [-seed N] [-format text|csv|json] <experiment>
//	repro [-format text|csv|json] list
//
// where experiment is one of: fig1 fig7 fig8 fig9 fig10 fig11 fig12
// table1 table2 table3 all, and list enumerates them with descriptions.
// The default text format is the historical human-readable output; csv
// and json emit the same tables machine-readably (timings move to
// stderr so stdout stays pipeable).
//
// Absolute numbers come from this repository's simulators (see DESIGN.md
// for the substitutions); the shapes are what reproduce the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"discovery/internal/experiments"
	"discovery/internal/metrics"
)

func main() {
	os.Exit(run())
}

// experimentOrder is the canonical sequence, used by "all" and "list".
var experimentOrder = []string{
	"fig7", "fig8", "fig9", "table1", "table2", "table3",
	"fig10", "fig1", "fig11", "fig12",
}

// descriptions feeds the list subcommand.
var descriptions = map[string]string{
	"fig1":   "effect of perturbation on MSPastry success rate",
	"fig7":   "expected number of local maxima, random regular topologies",
	"fig8":   "expected number of replicas, complete topologies",
	"fig9":   "MPIL insertion behavior vs overlay size",
	"fig10":  "MPIL lookup latency and traffic",
	"fig11":  "success rate under perturbation, all variants",
	"fig12":  "lookup traffic and total traffic under flapping",
	"table1": "MPIL lookup success rate grid, power-law overlays",
	"table2": "MPIL lookup success rate grid, random overlays",
	"table3": "actual number of flows of lookups",
	"all":    "every experiment above, in order",
}

func run() int {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick, medium, or paper")
	seed := flag.Int64("seed", 1, "root RNG seed")
	format := flag.String("format", "text", "output format: text, csv, or json")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: repro [-scale quick|medium|paper] [-seed N] [-format text|csv|json] <fig1|fig7|fig8|fig9|fig10|fig11|fig12|table1|table2|table3|all>\n"+
				"       repro [-format text|csv|json] list\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	// Validate the format up front (newEmitter is the single source of
	// truth for the accepted names) so a typo is a usage error.
	if _, err := newEmitter(*format, ""); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		flag.Usage()
		return 2
	}
	if flag.Arg(0) == "list" {
		if err := list(*format); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			return 2
		}
		return 0
	}

	static, perturbScale, err := scales(*scaleFlag, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		return 2
	}

	experimentsByName := map[string]func(emitter, experiments.StaticScale, experiments.PerturbScale) error{
		"fig1":  func(em emitter, s experiments.StaticScale, p experiments.PerturbScale) error { return fig1(em, p) },
		"fig7":  func(em emitter, _ experiments.StaticScale, _ experiments.PerturbScale) error { return fig7(em) },
		"fig8":  func(em emitter, _ experiments.StaticScale, _ experiments.PerturbScale) error { return fig8(em) },
		"fig9":  func(em emitter, s experiments.StaticScale, p experiments.PerturbScale) error { return fig9(em, s) },
		"fig10": func(em emitter, s experiments.StaticScale, p experiments.PerturbScale) error { return fig10(em, s) },
		"fig11": func(em emitter, s experiments.StaticScale, p experiments.PerturbScale) error { return fig11(em, p) },
		"fig12": func(em emitter, s experiments.StaticScale, p experiments.PerturbScale) error { return fig12(em, p) },
		"table1": func(em emitter, s experiments.StaticScale, p experiments.PerturbScale) error {
			return lookupTable(em, s, experiments.TopoPowerLaw, "Table 1 (power-law)")
		},
		"table2": func(em emitter, s experiments.StaticScale, p experiments.PerturbScale) error {
			return lookupTable(em, s, experiments.TopoRandom, "Table 2 (random)")
		},
		"table3": func(em emitter, s experiments.StaticScale, p experiments.PerturbScale) error { return table3(em, s) },
	}
	runOne := func(n string) error {
		em, err := newEmitter(*format, n)
		if err != nil {
			return err
		}
		start := time.Now()
		if err := experimentsByName[n](em, static, perturbScale); err != nil {
			return err
		}
		em.Done(n, time.Since(start))
		return em.Err()
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, n := range experimentOrder {
			if err := runOne(n); err != nil {
				fmt.Fprintln(os.Stderr, "repro:", err)
				return 1
			}
		}
		return 0
	}
	if _, ok := experimentsByName[name]; !ok {
		flag.Usage()
		return 2
	}
	if err := runOne(name); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		return 1
	}
	return 0
}

// list enumerates the experiments in the requested format.
func list(format string) error {
	em, err := newEmitter(format, "list")
	if err != nil {
		return err
	}
	tb := metrics.NewTable("experiment", "description")
	for _, n := range experimentOrder {
		tb.AddRow(n, descriptions[n])
	}
	tb.AddRow("all", descriptions["all"])
	em.Table(tb)
	return em.Err()
}

func scales(name string, seed int64) (experiments.StaticScale, experiments.PerturbScale, error) {
	var st experiments.StaticScale
	var pt experiments.PerturbScale
	switch name {
	case "quick":
		st, pt = experiments.QuickStaticScale(), experiments.QuickPerturbScale()
	case "medium":
		st = experiments.StaticScale{
			Sizes:            []int{1000, 2000, 4000},
			GraphsPerSize:    4,
			RequestsPerGraph: 100,
			RandomDegree:     100,
		}
		pt = experiments.MediumPerturbScale()
	case "paper":
		st, pt = experiments.PaperStaticScale(), experiments.PaperPerturbScale()
	default:
		return st, pt, fmt.Errorf("unknown scale %q", name)
	}
	st.Seed = seed
	pt.Seed = seed
	return st, pt, nil
}

func fig7(em emitter) error {
	ns := []int{4000, 8000, 16000}
	rows, err := experiments.RunFig7(ns)
	if err != nil {
		return err
	}
	em.Title("Figure 7: expected number of local maxima, random regular topologies")
	tb := metrics.NewTable("neighbors", "4000 nodes", "8000 nodes", "16000 nodes")
	for _, r := range rows {
		tb.AddRow(r.Neighbors, fmt.Sprintf("%.1f", r.Maxima[0]), fmt.Sprintf("%.1f", r.Maxima[1]), fmt.Sprintf("%.1f", r.Maxima[2]))
	}
	em.Table(tb)
	return nil
}

func fig8(em emitter) error {
	rows, err := experiments.RunFig8()
	if err != nil {
		return err
	}
	em.Title("Figure 8: expected number of replicas, complete topologies")
	tb := metrics.NewTable("nodes", "replicas")
	for _, r := range rows {
		tb.AddRow(r.N, fmt.Sprintf("%.4f", r.Replicas))
	}
	em.Table(tb)
	return nil
}

func fig9(em emitter, scale experiments.StaticScale) error {
	em.Title("Figure 9: MPIL insertion behavior (max_flows 30, 5 per-flow replicas)")
	for _, kind := range []experiments.TopoKind{experiments.TopoPowerLaw, experiments.TopoRandom} {
		rows, err := experiments.RunFig9(scale, kind)
		if err != nil {
			return err
		}
		em.Section(fmt.Sprintf("%v overlays", kind))
		tb := metrics.NewTable("nodes", "avg replicas", "avg traffic", "duplicate msgs")
		for _, r := range rows {
			tb.AddRow(r.N, fmt.Sprintf("%.1f", r.Replicas), fmt.Sprintf("%.1f", r.Traffic), fmt.Sprintf("%.0f", r.Duplicates))
		}
		em.Table(tb)
	}
	return nil
}

func lookupTable(em emitter, scale experiments.StaticScale, kind experiments.TopoKind, title string) error {
	rows, err := experiments.RunLookupTable(scale, kind)
	if err != nil {
		return err
	}
	em.Title(fmt.Sprintf("%s: MPIL lookup success rate (%%)", title))
	tb := metrics.NewTable("nodes", "max flows", "r=1", "r=2", "r=3", "r=4", "r=5")
	for _, r := range rows {
		tb.AddRow(r.N, r.MaxFlows,
			fmt.Sprintf("%.1f", r.SuccessPct[0]), fmt.Sprintf("%.1f", r.SuccessPct[1]),
			fmt.Sprintf("%.1f", r.SuccessPct[2]), fmt.Sprintf("%.1f", r.SuccessPct[3]),
			fmt.Sprintf("%.1f", r.SuccessPct[4]))
	}
	em.Table(tb)
	return nil
}

func table3(em emitter, scale experiments.StaticScale) error {
	em.Title("Table 3: actual number of flows of lookups (max_flows 10, 3 per-flow replicas)")
	tb := metrics.NewTable("topology", "nodes", "actual flows")
	for _, kind := range []experiments.TopoKind{experiments.TopoPowerLaw, experiments.TopoRandom} {
		rows, err := experiments.RunTable3(scale, kind)
		if err != nil {
			return err
		}
		for _, r := range rows {
			tb.AddRow(kind, r.N, fmt.Sprintf("%.3f", r.Flows))
		}
	}
	em.Table(tb)
	return nil
}

func fig10(em emitter, scale experiments.StaticScale) error {
	em.Title("Figure 10: MPIL lookup latency and traffic (max_flows 10, 5 per-flow replicas)")
	tb := metrics.NewTable("topology", "nodes", "latency (hops)", "traffic (msgs)")
	for _, kind := range []experiments.TopoKind{experiments.TopoPowerLaw, experiments.TopoRandom} {
		rows, err := experiments.RunFig10(scale, kind)
		if err != nil {
			return err
		}
		for _, r := range rows {
			tb.AddRow(kind, r.N, fmt.Sprintf("%.2f", r.Hops), fmt.Sprintf("%.1f", r.Traffic))
		}
	}
	em.Table(tb)
	return nil
}

func fig1(em emitter, scale experiments.PerturbScale) error {
	em.Title("Figure 1: effect of perturbation on MSPastry (success rate %)")
	probs := experiments.PaperFlapProbs()
	out, err := experiments.RunFig1(scale, experiments.PaperFlapSettings(), probs)
	if err != nil {
		return err
	}
	header := []string{"idle:offline"}
	for _, p := range probs {
		header = append(header, fmt.Sprintf("p=%.1f", p))
	}
	tb := metrics.NewTable(header...)
	for _, set := range experiments.PaperFlapSettings() {
		row := []interface{}{set.Label}
		for _, r := range out[set.Label] {
			row = append(row, fmt.Sprintf("%.1f", r.SuccessPct))
		}
		tb.AddRow(row...)
	}
	em.Table(tb)
	return nil
}

func fig11(em emitter, scale experiments.PerturbScale) error {
	em.Title("Figure 11: success rate under perturbation, all variants (%)")
	probs := experiments.PaperFlapProbs()
	out, err := experiments.RunFig11(scale, experiments.Fig11FlapSettings(), probs)
	if err != nil {
		return err
	}
	variants := []experiments.Variant{
		experiments.VariantPastry, experiments.VariantPastryRR,
		experiments.VariantMPILDS, experiments.VariantMPILNoDS,
	}
	for _, set := range experiments.Fig11FlapSettings() {
		em.Section("idle:offline = " + set.Label)
		header := []string{"variant"}
		for _, p := range probs {
			header = append(header, fmt.Sprintf("p=%.1f", p))
		}
		tb := metrics.NewTable(header...)
		for _, v := range variants {
			row := []interface{}{v.String()}
			for _, r := range out[set.Label+"/"+v.String()] {
				row = append(row, fmt.Sprintf("%.1f", r.SuccessPct))
			}
			tb.AddRow(row...)
		}
		em.Table(tb)
	}
	return nil
}

func fig12(em emitter, scale experiments.PerturbScale) error {
	em.Title("Figure 12: lookup traffic and total traffic at idle:offline = 30:30")
	probs := experiments.PaperFlapProbs()
	out, err := experiments.RunFig12(scale, probs)
	if err != nil {
		return err
	}
	for _, panel := range []struct {
		title string
		pick  func(experiments.PerturbResult) uint64
	}{
		{"lookup messages", func(r experiments.PerturbResult) uint64 { return r.LookupTraffic }},
		{"total messages (incl. maintenance)", func(r experiments.PerturbResult) uint64 { return r.TotalTraffic }},
	} {
		em.Section(panel.title)
		header := []string{"variant"}
		for _, p := range probs {
			header = append(header, fmt.Sprintf("p=%.1f", p))
		}
		tb := metrics.NewTable(header...)
		for _, v := range []experiments.Variant{experiments.VariantPastry, experiments.VariantMPILDS, experiments.VariantMPILNoDS} {
			row := []interface{}{v.String()}
			for _, r := range out[v.String()] {
				row = append(row, panel.pick(r))
			}
			tb.AddRow(row...)
		}
		em.Table(tb)
	}
	return nil
}
