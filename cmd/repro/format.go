package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"discovery/internal/metrics"
)

// emitter receives an experiment's output events. The text emitter
// reproduces the historical stdout byte for byte; csv and json render the
// same tables machine-readably (experiment timings go to stderr there, so
// the data stream stays clean for pipes).
type emitter interface {
	// Title announces the experiment's headline (one line).
	Title(line string)
	// Section announces a sub-section between tables. The text emitter
	// decorates it as "-- line --"; csv/json carry it verbatim.
	Section(line string)
	// Table emits one result table.
	Table(tb *metrics.Table)
	// Done reports the experiment finished.
	Done(name string, d time.Duration)
	// Err returns the first output error, so truncated csv/json streams
	// (full disk, closed pipe) fail the run instead of exiting 0.
	Err() error
}

// newEmitter builds the emitter for one experiment run.
func newEmitter(format, experiment string) (emitter, error) {
	switch format {
	case "text":
		return &textEmitter{}, nil
	case "csv":
		return &csvEmitter{experiment: experiment, w: csv.NewWriter(os.Stdout)}, nil
	case "json":
		return &jsonEmitter{experiment: experiment, enc: json.NewEncoder(os.Stdout)}, nil
	default:
		return nil, fmt.Errorf("unknown format %q (want text, csv or json)", format)
	}
}

// textEmitter is the historical human-readable output, unchanged.
type textEmitter struct{}

func (e *textEmitter) Title(line string)       { fmt.Println(line) }
func (e *textEmitter) Section(line string)     { fmt.Printf("-- %s --\n", line) }
func (e *textEmitter) Table(tb *metrics.Table) { fmt.Print(tb) }
func (e *textEmitter) Done(name string, d time.Duration) {
	fmt.Printf("[%s done in %s]\n\n", name, d.Round(time.Millisecond))
}
func (e *textEmitter) Err() error { return nil }

// csvEmitter writes each table as a header record followed by data
// records, all prefixed with experiment/title/section columns so several
// tables (and several experiments under "all") concatenate safely.
type csvEmitter struct {
	experiment string
	title      string
	section    string
	w          *csv.Writer
}

func (e *csvEmitter) Title(line string)   { e.title = line; e.section = "" }
func (e *csvEmitter) Section(line string) { e.section = line }
func (e *csvEmitter) Table(tb *metrics.Table) {
	head := append([]string{"experiment", "title", "section"}, tb.Header()...)
	e.w.Write(head) //nolint:errcheck // collected via Err
	for _, row := range tb.Rows() {
		e.w.Write(append([]string{e.experiment, e.title, e.section}, row...)) //nolint:errcheck
	}
	e.w.Flush()
}
func (e *csvEmitter) Done(name string, d time.Duration) {
	fmt.Fprintf(os.Stderr, "[%s done in %s]\n", name, d.Round(time.Millisecond))
}
func (e *csvEmitter) Err() error { return e.w.Error() }

// jsonEmitter writes one JSON object per table (JSON Lines), ready for
// jq and friends.
type jsonEmitter struct {
	experiment string
	title      string
	section    string
	enc        *json.Encoder
	err        error
}

// jsonTable is the shape of one emitted table.
type jsonTable struct {
	Experiment string     `json:"experiment"`
	Title      string     `json:"title,omitempty"`
	Section    string     `json:"section,omitempty"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
}

func (e *jsonEmitter) Title(line string)   { e.title = line; e.section = "" }
func (e *jsonEmitter) Section(line string) { e.section = line }
func (e *jsonEmitter) Table(tb *metrics.Table) {
	err := e.enc.Encode(jsonTable{
		Experiment: e.experiment,
		Title:      e.title,
		Section:    e.section,
		Header:     tb.Header(),
		Rows:       tb.Rows(),
	})
	if e.err == nil {
		e.err = err
	}
}
func (e *jsonEmitter) Done(name string, d time.Duration) {
	fmt.Fprintf(os.Stderr, "[%s done in %s]\n", name, d.Round(time.Millisecond))
}
func (e *jsonEmitter) Err() error { return e.err }
