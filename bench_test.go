package discovery

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md §5.
// Each bench runs the corresponding experiment at CI scale and reports the
// headline quantity as a custom metric, so `go test -bench=. -benchmem`
// regenerates every result's shape in one sweep. Full-scale runs are
// `go run ./cmd/repro -scale paper <experiment>`.

import (
	"math/rand"
	"testing"
	"time"

	"discovery/internal/experiments"
	"discovery/internal/idspace"
	"discovery/internal/mpil"
	"discovery/internal/overlay"
	"discovery/internal/topology"
	"discovery/internal/unstructured"
	"discovery/internal/workload"
)

func benchStaticScale() experiments.StaticScale {
	s := experiments.QuickStaticScale()
	s.GraphsPerSize = 1
	return s
}

func benchPerturbScale() experiments.PerturbScale {
	return experiments.PerturbScale{Nodes: 120, Requests: 30, Seed: 1}
}

// BenchmarkFig1PastryPerturbation regenerates Figure 1's worst and
// mildest settings at one probability, reporting success rates.
func BenchmarkFig1PastryPerturbation(b *testing.B) {
	scale := benchPerturbScale()
	var mild, harsh float64
	for i := 0; i < b.N; i++ {
		r1, err := experiments.RunPerturb(scale,
			experiments.FlapSetting{Label: "45:15", Idle: 45 * time.Second, Offline: 15 * time.Second},
			0.8, experiments.VariantPastry)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := experiments.RunPerturb(scale,
			experiments.FlapSetting{Label: "300:300", Idle: 300 * time.Second, Offline: 300 * time.Second},
			0.8, experiments.VariantPastry)
		if err != nil {
			b.Fatal(err)
		}
		mild, harsh = r1.SuccessPct, r2.SuccessPct
	}
	b.ReportMetric(mild, "45:15-success-%")
	b.ReportMetric(harsh, "300:300-success-%")
}

// BenchmarkFig7LocalMaximaAnalysis regenerates Figure 7's closed-form
// series.
func BenchmarkFig7LocalMaximaAnalysis(b *testing.B) {
	var headline float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig7([]int{4000, 8000, 16000})
		if err != nil {
			b.Fatal(err)
		}
		headline = rows[0].Maxima[2] // d=10, N=16000: paper plots ~1200
	}
	b.ReportMetric(headline, "maxima@d10,N16000")
}

// BenchmarkFig8CompleteReplicasAnalysis regenerates Figure 8.
func BenchmarkFig8CompleteReplicasAnalysis(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig8()
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1].Replicas // paper plots ~1.63
	}
	b.ReportMetric(last, "replicas@N16000")
}

// BenchmarkFig9InsertionBehavior regenerates Figure 9's three panels over
// both overlay families.
func BenchmarkFig9InsertionBehavior(b *testing.B) {
	scale := benchStaticScale()
	var plReplicas, rdReplicas float64
	for i := 0; i < b.N; i++ {
		pl, err := experiments.RunFig9(scale, experiments.TopoPowerLaw)
		if err != nil {
			b.Fatal(err)
		}
		rd, err := experiments.RunFig9(scale, experiments.TopoRandom)
		if err != nil {
			b.Fatal(err)
		}
		plReplicas, rdReplicas = pl[0].Replicas, rd[0].Replicas
	}
	b.ReportMetric(plReplicas, "powerlaw-replicas")
	b.ReportMetric(rdReplicas, "random-replicas")
}

// BenchmarkTable1LookupPowerLaw regenerates Table 1's success grid.
func BenchmarkTable1LookupPowerLaw(b *testing.B) {
	benchLookupTable(b, experiments.TopoPowerLaw)
}

// BenchmarkTable2LookupRandom regenerates Table 2's success grid.
func BenchmarkTable2LookupRandom(b *testing.B) {
	benchLookupTable(b, experiments.TopoRandom)
}

func benchLookupTable(b *testing.B, kind experiments.TopoKind) {
	b.Helper()
	scale := benchStaticScale()
	var r1, r5 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunLookupTable(scale, kind)
		if err != nil {
			b.Fatal(err)
		}
		r1, r5 = rows[0].SuccessPct[0], rows[0].SuccessPct[4]
	}
	b.ReportMetric(r1, "success-%@r1")
	b.ReportMetric(r5, "success-%@r5")
}

// BenchmarkTable3ActualFlows regenerates Table 3.
func BenchmarkTable3ActualFlows(b *testing.B) {
	scale := benchStaticScale()
	var flows float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable3(scale, experiments.TopoPowerLaw)
		if err != nil {
			b.Fatal(err)
		}
		flows = rows[0].Flows
	}
	b.ReportMetric(flows, "actual-flows")
}

// BenchmarkFig10LookupLatencyTraffic regenerates Figure 10's two panels.
func BenchmarkFig10LookupLatencyTraffic(b *testing.B) {
	scale := benchStaticScale()
	var hops, traffic float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig10(scale, experiments.TopoPowerLaw)
		if err != nil {
			b.Fatal(err)
		}
		hops, traffic = rows[0].Hops, rows[0].Traffic
	}
	b.ReportMetric(hops, "latency-hops")
	b.ReportMetric(traffic, "msgs/lookup")
}

// BenchmarkFig11PerturbationComparison regenerates Figure 11's central
// comparison at 30:30, heavy flapping.
func BenchmarkFig11PerturbationComparison(b *testing.B) {
	scale := benchPerturbScale()
	setting := experiments.FlapSetting{Label: "30:30", Idle: 30 * time.Second, Offline: 30 * time.Second}
	var pastryPct, mpilPct float64
	for i := 0; i < b.N; i++ {
		rp, err := experiments.RunPerturb(scale, setting, 0.9, experiments.VariantPastry)
		if err != nil {
			b.Fatal(err)
		}
		rm, err := experiments.RunPerturb(scale, setting, 0.9, experiments.VariantMPILNoDS)
		if err != nil {
			b.Fatal(err)
		}
		pastryPct, mpilPct = rp.SuccessPct, rm.SuccessPct
	}
	b.ReportMetric(pastryPct, "MSPastry-success-%")
	b.ReportMetric(mpilPct, "MPIL-success-%")
}

// BenchmarkFig12Traffic regenerates Figure 12's traffic accounting.
func BenchmarkFig12Traffic(b *testing.B) {
	scale := benchPerturbScale()
	setting := experiments.FlapSetting{Label: "30:30", Idle: 30 * time.Second, Offline: 30 * time.Second}
	var pastryTotal, mpilTotal float64
	for i := 0; i < b.N; i++ {
		rp, err := experiments.RunPerturb(scale, setting, 0.5, experiments.VariantPastry)
		if err != nil {
			b.Fatal(err)
		}
		rm, err := experiments.RunPerturb(scale, setting, 0.5, experiments.VariantMPILNoDS)
		if err != nil {
			b.Fatal(err)
		}
		pastryTotal, mpilTotal = float64(rp.TotalTraffic), float64(rm.TotalTraffic)
	}
	b.ReportMetric(pastryTotal, "MSPastry-total-msgs")
	b.ReportMetric(mpilTotal, "MPIL-total-msgs")
}

// --- Ablation benches (DESIGN.md §5) ---

// ablationFixture builds a static overlay plus inserted keys for ablation
// lookups.
func ablationFixture(b *testing.B, cfg mpil.Config) (*mpil.Engine, []workload.InsertLookupPair) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g, err := topology.PowerLaw(1500, 2.2, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	nw := overlay.New(g, rng, nil)
	eng, err := mpil.NewEngine(nw, cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	pairs, err := workload.RandomOrigins(100, nw.N(), rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range pairs {
		eng.Insert(p.InsertOrigin, p.Key, nil, 0)
	}
	return eng, pairs
}

func ablationSuccessAndTraffic(b *testing.B, cfg mpil.Config) (successPct, msgs float64) {
	b.Helper()
	eng, pairs := ablationFixture(b, cfg)
	found, traffic := 0, 0
	for _, p := range pairs {
		st, err := eng.LookupWith(cfg, p.LookupOrigin, p.Key, 0)
		if err != nil {
			b.Fatal(err)
		}
		if st.Found {
			found++
		}
		traffic += st.Messages
	}
	return 100 * float64(found) / float64(len(pairs)), float64(traffic) / float64(len(pairs))
}

// BenchmarkAblationDuplicateSuppression contrasts DS on/off on a static
// overlay (the paper's Section 6.2 finding is that DS saves traffic but
// costs robustness on dynamic overlays; statically it should only save
// traffic).
func BenchmarkAblationDuplicateSuppression(b *testing.B) {
	base := mpil.Config{Space: idspace.MustSpace(4), MaxFlows: 10, PerFlowReplicas: 3}
	var msgsOn, msgsOff float64
	for i := 0; i < b.N; i++ {
		on := base
		on.DuplicateSuppression = true
		_, msgsOn = ablationSuccessAndTraffic(b, on)
		_, msgsOff = ablationSuccessAndTraffic(b, base)
	}
	b.ReportMetric(msgsOn, "msgs/lookup-DS")
	b.ReportMetric(msgsOff, "msgs/lookup-noDS")
}

// BenchmarkAblationDigitBase contrasts the routing metric's digit width:
// smaller digits tie more often, branching more flows.
func BenchmarkAblationDigitBase(b *testing.B) {
	results := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{1, 2, 4} {
			cfg := mpil.Config{
				Space:                idspace.MustSpace(bits),
				MaxFlows:             10,
				PerFlowReplicas:      3,
				DuplicateSuppression: true,
			}
			pct, _ := ablationSuccessAndTraffic(b, cfg)
			results[bits] = pct
		}
	}
	b.ReportMetric(results[1], "success-%@b1")
	b.ReportMetric(results[2], "success-%@b2")
	b.ReportMetric(results[4], "success-%@b4")
}

// BenchmarkAblationQuotaSplit contrasts the paper's round-robin residue
// rule against naive equal split, which silently burns quota at branches.
func BenchmarkAblationQuotaSplit(b *testing.B) {
	base := mpil.Config{
		Space:                idspace.MustSpace(4),
		MaxFlows:             10,
		PerFlowReplicas:      3,
		DuplicateSuppression: true,
	}
	var rr, eq float64
	for i := 0; i < b.N; i++ {
		rrCfg := base
		rrCfg.QuotaSplit = mpil.QuotaSplitRoundRobin
		rr, _ = ablationSuccessAndTraffic(b, rrCfg)
		eqCfg := base
		eqCfg.QuotaSplit = mpil.QuotaSplitEqual
		eq, _ = ablationSuccessAndTraffic(b, eqCfg)
	}
	b.ReportMetric(rr, "success-%-roundrobin")
	b.ReportMetric(eq, "success-%-equalsplit")
}

// BenchmarkAblationReplicationOnRoute contrasts base MSPastry against the
// RR variant under perturbation.
func BenchmarkAblationReplicationOnRoute(b *testing.B) {
	scale := benchPerturbScale()
	setting := experiments.FlapSetting{Label: "30:30", Idle: 30 * time.Second, Offline: 30 * time.Second}
	var base, rr float64
	for i := 0; i < b.N; i++ {
		r1, err := experiments.RunPerturb(scale, setting, 0.7, experiments.VariantPastry)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := experiments.RunPerturb(scale, setting, 0.7, experiments.VariantPastryRR)
		if err != nil {
			b.Fatal(err)
		}
		base, rr = r1.SuccessPct, r2.SuccessPct
	}
	b.ReportMetric(base, "MSPastry-success-%")
	b.ReportMetric(rr, "MSPastry+RR-success-%")
}

// BenchmarkAblationMetric contrasts the three routing metrics of the
// Section 4.2 distinguishability argument over a power-law overlay.
func BenchmarkAblationMetric(b *testing.B) {
	type out struct{ pct, msgs float64 }
	results := map[mpil.Metric]out{}
	for i := 0; i < b.N; i++ {
		for _, m := range []mpil.Metric{mpil.MetricCommonDigits, mpil.MetricSharedPrefix, mpil.MetricXOR} {
			cfg := mpil.Config{
				Space:                idspace.MustSpace(4),
				MaxFlows:             10,
				PerFlowReplicas:      3,
				DuplicateSuppression: true,
				Metric:               m,
			}
			pct, msgs := ablationSuccessAndTraffic(b, cfg)
			results[m] = out{pct, msgs}
		}
	}
	b.ReportMetric(results[mpil.MetricCommonDigits].pct, "success-%-commondigits")
	b.ReportMetric(results[mpil.MetricCommonDigits].msgs, "msgs-commondigits")
	b.ReportMetric(results[mpil.MetricSharedPrefix].pct, "success-%-prefix")
	b.ReportMetric(results[mpil.MetricSharedPrefix].msgs, "msgs-prefix")
	b.ReportMetric(results[mpil.MetricXOR].pct, "success-%-xor")
	b.ReportMetric(results[mpil.MetricXOR].msgs, "msgs-xor")
}

// BenchmarkBaselineFloodVsMPIL contrasts MPIL against Gnutella-style
// flooding on identical overlays and replica placements: both find the
// object, flooding pays an order of magnitude more traffic (the paper's
// Section 1 positioning).
func BenchmarkBaselineFloodVsMPIL(b *testing.B) {
	cfg := mpil.Config{Space: idspace.MustSpace(4), MaxFlows: 10, PerFlowReplicas: 3, DuplicateSuppression: true}
	var mpilMsgs, floodMsgs, mpilPct, floodPct float64
	for i := 0; i < b.N; i++ {
		eng, pairs := ablationFixture(b, cfg)
		var mm, fm, mok, fok int
		for _, p := range pairs {
			st, err := eng.LookupWith(cfg, p.LookupOrigin, p.Key, 0)
			if err != nil {
				b.Fatal(err)
			}
			mm += st.Messages
			if st.Found {
				mok++
			}
			holds := func(n int) bool {
				_, ok := eng.Stored(n, p.Key)
				return ok
			}
			fr, err := unstructured.Flood(eng.Overlay(), holds, p.LookupOrigin, 5, 0)
			if err != nil {
				b.Fatal(err)
			}
			fm += fr.Messages
			if fr.Found {
				fok++
			}
		}
		n := float64(len(pairs))
		mpilMsgs, floodMsgs = float64(mm)/n, float64(fm)/n
		mpilPct, floodPct = 100*float64(mok)/n, 100*float64(fok)/n
	}
	b.ReportMetric(mpilMsgs, "MPIL-msgs/lookup")
	b.ReportMetric(floodMsgs, "flood-msgs/lookup")
	b.ReportMetric(mpilPct, "MPIL-success-%")
	b.ReportMetric(floodPct, "flood-success-%")
}

// BenchmarkBaselineRandomWalkVsMPIL contrasts MPIL against k random
// walkers with an equal walker budget (walkers = max_flows).
func BenchmarkBaselineRandomWalkVsMPIL(b *testing.B) {
	cfg := mpil.Config{Space: idspace.MustSpace(4), MaxFlows: 10, PerFlowReplicas: 3, DuplicateSuppression: true}
	rng := rand.New(rand.NewSource(5))
	var walkMsgs, walkPct float64
	for i := 0; i < b.N; i++ {
		eng, pairs := ablationFixture(b, cfg)
		var wm, wok int
		for _, p := range pairs {
			holds := func(n int) bool {
				_, ok := eng.Stored(n, p.Key)
				return ok
			}
			wr, err := unstructured.RandomWalk(eng.Overlay(), holds, p.LookupOrigin, cfg.MaxFlows, 50, 0, rng)
			if err != nil {
				b.Fatal(err)
			}
			wm += wr.Messages
			if wr.Found {
				wok++
			}
		}
		n := float64(len(pairs))
		walkMsgs, walkPct = float64(wm)/n, 100*float64(wok)/n
	}
	b.ReportMetric(walkMsgs, "walk-msgs/lookup")
	b.ReportMetric(walkPct, "walk-success-%")
}

// BenchmarkServiceInsert measures raw public-API insertion throughput.
func BenchmarkServiceInsert(b *testing.B) {
	ov, err := RandomOverlay(1000, 20, 1)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := New(ov)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.Insert(i%ov.N(), RandomID(rng), nil)
	}
}

// BenchmarkServiceLookup measures raw public-API lookup throughput.
func BenchmarkServiceLookup(b *testing.B) {
	ov, err := RandomOverlay(1000, 20, 1)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := New(ov)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	keys := make([]ID, 256)
	for i := range keys {
		keys[i] = RandomID(rng)
		svc.Insert(rng.Intn(ov.N()), keys[i], nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.Lookup(i%ov.N(), keys[i%len(keys)])
	}
}
