package discovery_test

import (
	"fmt"

	discovery "discovery"
)

// The basic publish/discover/withdraw cycle over a generated overlay.
func Example() {
	ov, err := discovery.RandomOverlay(500, 16, 7)
	if err != nil {
		panic(err)
	}
	svc, err := discovery.New(ov)
	if err != nil {
		panic(err)
	}

	key := discovery.NewID("build-cache/v1")
	ins := svc.Insert(42, key, []byte("http://node42/cache"))
	fmt.Println("stored at least one replica:", ins.Replicas >= 1)

	res := svc.Lookup(317, key)
	fmt.Println("found:", res.Found)

	svc.Delete(42, key)
	fmt.Println("found after delete:", svc.Lookup(317, key).Found)
	// Output:
	// stored at least one replica: true
	// found: true
	// found after delete: false
}

// Wrapping an existing system's adjacency lists: overlay-independence
// means any neighbor lists work, including asymmetric ones.
func ExampleNewNamedOverlay() {
	// A toy 4-node legacy overlay with named hosts.
	neighbors := [][]int{
		{1, 2}, // gateway knows both workers
		{0, 3}, // worker-a
		{0, 3}, // worker-b
		{1, 2}, // storage
	}
	names := []string{"gateway:9000", "worker-a:9000", "worker-b:9000", "storage:9000"}
	ov, err := discovery.NewNamedOverlay(neighbors, names)
	if err != nil {
		panic(err)
	}
	svc, err := discovery.New(ov, discovery.WithMaxFlows(2), discovery.WithPerFlowReplicas(1))
	if err != nil {
		panic(err)
	}
	key := discovery.NewID("job-results/17")
	svc.Insert(3, key, []byte("stored on storage"))
	fmt.Println("gateway can discover it:", svc.Lookup(0, key).Found)
	// Output:
	// gateway can discover it: true
}

// Perturbation-resistance: lookups keep succeeding while part of the
// overlay is unresponsive.
func ExampleStaticOverlay_SetOnline() {
	ov, err := discovery.RandomOverlay(500, 16, 11)
	if err != nil {
		panic(err)
	}
	svc, err := discovery.New(ov, discovery.WithMaxFlows(15))
	if err != nil {
		panic(err)
	}
	key := discovery.NewID("resilient-object")
	svc.Insert(0, key, nil)

	// A tenth of the overlay goes dark.
	for i := 5; i < ov.N(); i += 10 {
		ov.SetOnline(i, false)
	}
	fmt.Println("online nodes:", ov.OnlineCount())
	fmt.Println("still found:", svc.Lookup(0, key).Found)
	// Output:
	// online nodes: 450
	// still found: true
}
