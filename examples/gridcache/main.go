// Gridcache: cooperative web caching on a legacy Grid overlay — the
// motivating scenario of the paper's introduction. A computing Grid
// already maintains its own power-law overlay for scheduling; we deploy
// cooperative caching ON TOP of it, with zero extra overlay maintenance,
// by routing cache-location lookups with MPIL over the existing links.
//
// Nodes request URLs with Zipf-like popularity. On a miss, a node fetches
// from the origin server (expensive) and publishes a pointer to its cached
// copy; later requesters discover a nearby cached copy instead.
//
// Run with: go run ./examples/gridcache
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	discovery "discovery"
)

const (
	nodes    = 2000
	urls     = 500
	requests = 5000
	zipfS    = 1.1
)

func main() {
	// The "legacy Grid overlay": Internet-like, power-law, NOT built for
	// caching — exactly the overlay-independence setting.
	ov, err := discovery.PowerLawOverlay(nodes, 7)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := discovery.New(ov, discovery.WithMaxFlows(10), discovery.WithPerFlowReplicas(3))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, zipfS, 1, urls-1)

	published := make(map[uint64]bool)
	var hits, misses, originFetches int
	var discoveryHops, discoveryMsgs float64

	for i := 0; i < requests; i++ {
		u := zipf.Uint64()
		node := rng.Intn(nodes)
		key := discovery.NewID(fmt.Sprintf("http://origin/objects/%d", u))

		res := svc.Lookup(node, key)
		if res.Found {
			hits++
			discoveryHops += float64(res.FirstReplyHops)
			discoveryMsgs += float64(res.Messages)
			continue
		}
		misses++
		originFetches++
		if !published[u] {
			// First fetcher publishes its cached copy's location.
			svc.Insert(node, key, []byte(fmt.Sprintf("cache://node%d/%d", node, u)))
			published[u] = true
		}
	}

	fmt.Printf("cooperative cache over a %d-node legacy Grid overlay\n", nodes)
	fmt.Printf("requests: %d over %d URLs (zipf s=%.1f)\n", requests, urls, zipfS)
	fmt.Printf("cache hit rate: %.1f%% (%d hits, %d misses)\n",
		100*float64(hits)/float64(requests), hits, misses)
	fmt.Printf("origin-server fetches avoided: %d of %d requests\n", requests-originFetches, requests)
	if hits > 0 {
		fmt.Printf("avg discovery latency: %.2f hops, %.1f messages per hit\n",
			discoveryHops/float64(hits), discoveryMsgs/float64(hits))
	}
	// The punchline: hit rate approaches the theoretical max (requests
	// to already-seen URLs) without any overlay changes.
	maxPossible := requests - len(published)
	fmt.Printf("theoretical max hits (already-cached requests): %d; achieved %.1f%% of that\n",
		maxPossible, 100*float64(hits)/math.Max(1, float64(maxPossible)))
}
