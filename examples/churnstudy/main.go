// Churnstudy: how lookup success degrades as more of the overlay becomes
// unresponsive, comparing MPIL's redundant multi-path routing against a
// single-path ablation (max_flows=1, one replica) on the same overlay —
// the paper's perturbation-resistance argument in miniature, driven
// entirely through the public API.
//
// Run with: go run ./examples/churnstudy
package main

import (
	"fmt"
	"log"
	"math/rand"

	discovery "discovery"
)

const (
	nodes   = 1500
	degree  = 20
	objects = 150
)

func run(label string, opts ...discovery.Option) []float64 {
	ov, err := discovery.RandomOverlay(nodes, degree, 99)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := discovery.New(ov, opts...)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	keys := make([]discovery.ID, objects)
	for i := range keys {
		keys[i] = discovery.RandomID(rng)
		svc.Insert(rng.Intn(nodes), keys[i], nil)
	}

	var curve []float64
	for _, frac := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		// Perturb a fresh random fraction of nodes.
		perturbRng := rand.New(rand.NewSource(17))
		for i := 0; i < nodes; i++ {
			ov.SetOnline(i, true)
		}
		for i := 0; i < nodes; i++ {
			if perturbRng.Float64() < frac {
				ov.SetOnline(i, false)
			}
		}
		found := 0
		for _, key := range keys {
			origin := rng.Intn(nodes)
			for !ov.Online(origin, 0) {
				origin = rng.Intn(nodes) // an offline node cannot ask
			}
			if svc.Lookup(origin, key).Found {
				found++
			}
		}
		curve = append(curve, 100*float64(found)/float64(objects))
	}
	return curve
}

func main() {
	fracs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	multi := run("MPIL",
		discovery.WithMaxFlows(15), discovery.WithPerFlowReplicas(5))
	single := run("single-path",
		discovery.WithMaxFlows(1), discovery.WithPerFlowReplicas(1))

	fmt.Println("lookup success (%) vs fraction of overlay perturbed")
	fmt.Printf("%-22s", "perturbed fraction:")
	for _, f := range fracs {
		fmt.Printf("%7.0f%%", 100*f)
	}
	fmt.Println()
	fmt.Printf("%-22s", "MPIL (15 flows, r=5):")
	for _, v := range multi {
		fmt.Printf("%7.1f ", v)
	}
	fmt.Println()
	fmt.Printf("%-22s", "single path (1 flow):")
	for _, v := range single {
		fmt.Printf("%7.1f ", v)
	}
	fmt.Println()
	fmt.Println("\nredundancy is what buys perturbation-resistance: same overlay,")
	fmt.Println("same metric, only the flow/replica budget differs.")
}
