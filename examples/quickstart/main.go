// Quickstart: publish and discover an object pointer over an arbitrary
// overlay in a dozen lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	discovery "discovery"
)

func main() {
	// Any overlay works; here, a 1000-node random overlay where every
	// node knows 20 peers. In a real deployment you would wrap your
	// existing overlay's neighbor lists in a discovery.Overlay instead.
	ov, err := discovery.RandomOverlay(1000, 20, 42)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := discovery.New(ov)
	if err != nil {
		log.Fatal(err)
	}

	// Node 17 publishes where it serves "dataset-v2".
	key := discovery.NewID("dataset-v2")
	ins := svc.Insert(17, key, []byte("tcp://node17:7700/dataset-v2"))
	fmt.Printf("inserted %q: %d replicas, %d messages, %d flows\n",
		"dataset-v2", ins.Replicas, ins.Messages, ins.Flows)

	// Any other node can now discover it without knowing node 17.
	res := svc.Lookup(941, key)
	if !res.Found {
		log.Fatal("lookup failed")
	}
	holder := svc.Holders(key)[0]
	val, _ := svc.Value(holder, key)
	fmt.Printf("node 941 found it in %d hops (%d messages): %s\n",
		res.FirstReplyHops, res.Messages, val)

	// The owner withdraws the object.
	removed := svc.Delete(17, key)
	fmt.Printf("owner deleted %d replicas; lookup now finds it: %v\n",
		removed, svc.Lookup(941, key).Found)
}
