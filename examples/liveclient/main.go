// Liveclient: the smallest useful discoveryd client. It dials a running
// daemon with the binary wire codec, publishes a pointer under a named
// key, looks it up from a different entry node, inspects daemon stats,
// and deletes the object again.
//
// Start a daemon first, then run the client:
//
//	go run ./cmd/discoveryd -listen :7700 &
//	go run ./examples/liveclient -addr localhost:7700
package main

import (
	"flag"
	"fmt"
	"log"

	discovery "discovery"
	"discovery/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:7700", "discoveryd address")
	name := flag.String("name", "dataset-v2", "object name to publish")
	flag.Parse()

	c, err := server.Dial(*addr)
	if err != nil {
		log.Fatalf("liveclient: dial %s: %v (is discoveryd running?)", *addr, err)
	}
	defer c.Close()

	key := discovery.NewID(*name)
	const origin = 0 // publish from node 0; lookups may start anywhere

	ins, err := c.Insert(origin, key, []byte("tcp://node0:9000/"+*name))
	if err != nil {
		log.Fatalf("liveclient: insert: %v", err)
	}
	fmt.Printf("insert %q: %d replicas via %d flows (%d messages)\n",
		*name, ins.Replicas, ins.Flows, ins.Messages)

	res, err := c.Lookup(server.OriginAuto, key)
	if err != nil {
		log.Fatalf("liveclient: lookup: %v", err)
	}
	if res.Found {
		fmt.Printf("lookup %q: found in %d hops (%d replies, %d messages)\n",
			*name, res.FirstReplyHops, res.Replies, res.Messages)
	} else {
		fmt.Printf("lookup %q: not found\n", *name)
	}

	st, err := c.Stats()
	if err != nil {
		log.Fatalf("liveclient: stats: %v", err)
	}
	fmt.Printf("daemon: %d shards, %d inserts / %d lookups served (%d found)\n",
		st.Shards, st.Inserts, st.Lookups, st.Found)

	removed, err := c.Delete(origin, key)
	if err != nil {
		log.Fatalf("liveclient: delete: %v", err)
	}
	fmt.Printf("delete %q: removed %d replicas\n", *name, removed)
}
