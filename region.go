package discovery

import (
	"encoding/binary"
	"math/bits"
)

// This file defines keyspace regions: the unit of ownership when a
// cluster of discovery nodes splits the 160-bit ID space among separate
// processes (cmd/discoverynode, internal/p2p). The space is divided into
// n contiguous, near-equal regions by a key's top 64 bits, so ownership
// is a pure function of (key, n): deterministic, total (every ID has
// exactly one owner), and independent of insertion order or network
// state. Nodes that agree on the member count agree on every key's
// owner, with no coordination protocol.

// OwnerOf returns the index of the region owning key among n contiguous
// regions, in [0, n). Region boundaries are computed in fixed point so
// every ID has exactly one owner and region i covers keys whose top 64
// bits lie in [ceil(i*2^64/n), ceil((i+1)*2^64/n)).
func OwnerOf(key ID, n int) int {
	if n <= 1 {
		return 0
	}
	hi := binary.BigEndian.Uint64(key[:8])
	// floor(hi * n / 2^64): the high word of the 128-bit product.
	q, _ := bits.Mul64(hi, uint64(n))
	return int(q)
}

// RegionStart returns the first ID of region i among n regions: the
// smallest ID whose owner is i. Useful for boundary tests and range
// scans; RegionStart(0, n) is the zero ID.
func RegionStart(i, n int) ID {
	var id ID
	if i <= 0 || n <= 1 {
		return id
	}
	if i >= n {
		for b := range id {
			id[b] = 0xFF
		}
		return id
	}
	// ceil(i * 2^64 / n) = floor((i*2^64 + n-1) / n).
	q, _ := bits.Div64(uint64(i), uint64(n-1), uint64(n))
	binary.BigEndian.PutUint64(id[:8], q)
	return id
}
