package discovery

import (
	"encoding/binary"
	"math/bits"
)

// This file defines keyspace regions: the unit of ownership when a
// cluster of discovery nodes splits the 160-bit ID space among separate
// processes (cmd/discoverynode, internal/p2p). The space is divided into
// n contiguous, near-equal regions by a key's top 64 bits, so ownership
// is a pure function of (key, n): deterministic, total (every ID has
// exactly one owner), and independent of insertion order or network
// state. Nodes that agree on the member count agree on every key's
// owner, with no coordination protocol.

// OwnerOf returns the index of the region owning key among n contiguous
// regions, in [0, n). Region boundaries are computed in fixed point so
// every ID has exactly one owner and region i covers keys whose top 64
// bits lie in [ceil(i*2^64/n), ceil((i+1)*2^64/n)).
func OwnerOf(key ID, n int) int {
	if n <= 1 {
		return 0
	}
	hi := binary.BigEndian.Uint64(key[:8])
	// floor(hi * n / 2^64): the high word of the 128-bit product.
	q, _ := bits.Mul64(hi, uint64(n))
	return int(q)
}

// ReplicasOf returns the indices of the r regions that replicate key
// among n regions: the owner first, then the next r-1 region indices in
// ascending order, wrapping around the end of the keyspace. Like
// OwnerOf it is a pure function of (key, n, r) — deterministic, total,
// and coordination-free — so every node that agrees on (n, r) agrees on
// every key's replica set. r is clamped to [1, n].
func ReplicasOf(key ID, n, r int) []int {
	if n < 1 {
		n = 1
	}
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	owner := OwnerOf(key, n)
	set := make([]int, r)
	for i := 0; i < r; i++ {
		set[i] = (owner + i) % n
	}
	return set
}

// Replicates reports whether region index is one of the r replicas of
// key among n regions, without allocating the replica slice. It is
// exactly "index ∈ ReplicasOf(key, n, r)".
func Replicates(key ID, index, n, r int) bool {
	if n < 1 {
		n = 1
	}
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	if index < 0 || index >= n {
		return false
	}
	owner := OwnerOf(key, n)
	return (index-owner+n)%n < r
}

// RegionStart returns the first ID of region i among n regions: the
// smallest ID whose owner is i. Useful for boundary tests and range
// scans; RegionStart(0, n) is the zero ID.
func RegionStart(i, n int) ID {
	var id ID
	if i <= 0 || n <= 1 {
		return id
	}
	if i >= n {
		for b := range id {
			id[b] = 0xFF
		}
		return id
	}
	// ceil(i * 2^64 / n) = floor((i*2^64 + n-1) / n).
	q, _ := bits.Div64(uint64(i), uint64(n-1), uint64(n))
	binary.BigEndian.PutUint64(id[:8], q)
	return id
}
