// Package discovery is a perturbation-resistant, overlay-independent
// resource location and discovery library — a production-shaped
// implementation of MPIL (Multi-Path Insertion/Lookup) from Ko & Gupta,
// "Perturbation-Resistant and Overlay-Independent Resource Discovery"
// (DSN 2005).
//
// The library lets any distributed application insert and look up object
// pointers over any overlay graph — structured or not — without deploying
// overlay maintenance protocols. Routing uses a deterministic ID-space
// metric (shared digit count) and exploits limited redundancy (multiple
// flows, multiple replicas per flow) for robustness against node
// perturbation such as congestion stalls or churn.
//
// # Quick start
//
//	ov, _ := discovery.RandomOverlay(1000, 20, 42)
//	svc, _ := discovery.New(ov)
//	key := discovery.NewID("my-object")
//	svc.Insert(0, key, []byte("http://host/object"))
//	res := svc.Lookup(731, key)   // res.Found, res.FirstReplyHops, ...
//
// The internal packages additionally contain the paper's full experimental
// apparatus (a Pastry baseline, flapping perturbation models, a
// discrete-event simulator, and per-figure benchmark harnesses); see
// DESIGN.md and EXPERIMENTS.md.
package discovery

import (
	"math/rand"

	"discovery/internal/idspace"
)

// ID is a 160-bit identifier in the discovery key space. Node and object
// IDs share this space.
type ID = idspace.ID

// NewID hashes an arbitrary name (an object URL, a node address) into the
// ID space with SHA-1, the hash Pastry-era deployments used; output is
// exactly 160 bits.
func NewID(name string) ID { return idspace.FromString(name) }

// ParseID parses a 40-character hexadecimal identifier.
func ParseID(hex string) (ID, error) { return idspace.ParseHex(hex) }

// RandomID draws an ID uniformly at random from the given source.
func RandomID(rng *rand.Rand) ID { return idspace.Random(rng) }
