package discovery

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"discovery/internal/metrics"
	"discovery/internal/mpil"
	"discovery/internal/snapshot"
)

// Pool is a concurrency-safe, shard-per-core wrapper around Service. A
// Service is single-threaded by design (the MPIL engine keeps mutable
// routing scratch and a deterministic RNG), so Pool partitions the key
// space across a fixed set of shards, each owning one Service over the
// shared read-only overlay. Every key maps to exactly one shard, so all
// replicas, deletes, and lookups for a key agree on which engine owns it.
//
// Calls for different shards proceed in parallel; calls for the same
// shard serialize on that shard's mutex. For a fixed seed and shard
// count, each shard is as deterministic as a lone Service: the i-th
// operation on a shard gives the same result in any run that delivers
// the same operations to that shard in the same order.
//
// Pool is the library-side counterpart of the discoveryd daemon, which
// adds bounded request queues and a wire protocol in front of the same
// sharding scheme (see internal/server).
//
// A Pool is in-memory by default: a restart loses every stored replica.
// OpenDurablePool builds a Pool whose mutations are logged to a
// write-ahead log and periodically snapshotted, surviving restarts and
// crashes (see durable.go).
type Pool struct {
	ov     Overlay
	base   config // validated option state shared by every shard
	shards []poolShard
}

// mutationHook observes one mutation before it is applied, while the
// owning shard's lock is held. Returning an error aborts the mutation
// before it touches the engine — the write-ahead contract: a mutation
// that was not logged durably is never applied, never acked. node is
// meaningful only for direct replica placements (opPut, opDrop).
type mutationHook func(kind opKind, node, origin uint32, key ID, value []byte) error

// batchHook observes every mutation of one ExecBatch before any of them
// is applied, with the owning shard's lock held: the durable layer logs
// them as a single multi-record append covered by one shared fsync.
// Ops whose Err is already set and non-mutating ops must be skipped.
// Returning an error means no mutation in the batch is known durable,
// so none of them may execute.
type batchHook func(ops []BatchOp) error

// poolShard is one engine plus its serialization lock and counters. The
// counters live in the pool's metrics registry (a private one unless
// WithMetrics supplied a shared registry), so a live /metrics scrape and
// Pool.Stats read the same atomics; increments happen while the shard
// executes a request under mu, reads are lock-free.
type poolShard struct {
	mu    sync.Mutex
	svc   *Service
	hook  mutationHook // nil for in-memory pools
	batch batchHook    // nil for in-memory pools

	inserts      *metrics.Counter
	lookups      *metrics.Counter
	deletes      *metrics.Counter
	lookupsFound *metrics.Counter
	replyHops    *metrics.Counter // total first-reply hops over found lookups
}

// NewPool builds a pool of shards over one overlay. shards <= 0 selects
// GOMAXPROCS. Options apply to every shard, except that each shard i
// derives its tie-sampling seed as seed+i so shards draw independent
// deterministic streams.
func NewPool(ov Overlay, shards int, opts ...Option) (*Pool, error) {
	if ov == nil {
		return nil, fmt.Errorf("discovery: nil overlay")
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	// Recover the base seed the caller configured (default 1) so the
	// per-shard seeds are derived from it.
	base := config{seed: 1, regionCount: 1, replication: 1}
	for _, opt := range opts {
		opt(&base)
	}
	// Counters always live in a registry so Stats works unmetered; a
	// shared registry (WithMetrics) additionally exposes them process-wide.
	reg := base.metrics
	if reg == nil {
		reg = metrics.NewRegistry()
		base.metrics = reg
	}
	p := &Pool{ov: ov, base: base, shards: make([]poolShard, shards)}
	for i := range p.shards {
		svc, err := New(ov, append(append([]Option(nil), opts...), WithSeed(base.seed+int64(i)))...)
		if err != nil {
			return nil, err
		}
		s := &p.shards[i]
		s.svc = svc
		s.inserts = reg.Counter(fmt.Sprintf("pool.ops{op=insert,shard=%d}", i))
		s.lookups = reg.Counter(fmt.Sprintf("pool.ops{op=lookup,shard=%d}", i))
		s.deletes = reg.Counter(fmt.Sprintf("pool.ops{op=delete,shard=%d}", i))
		s.lookupsFound = reg.Counter(fmt.Sprintf("pool.lookups_found{shard=%d}", i))
		s.replyHops = reg.Counter(fmt.Sprintf("pool.reply_hops_total{shard=%d}", i))
	}
	return p, nil
}

// NumShards returns the shard count.
func (p *Pool) NumShards() int { return len(p.shards) }

// Overlay returns the overlay every shard routes over.
func (p *Pool) Overlay() Overlay { return p.ov }

// Region returns the keyspace region this pool owns (index of count
// contiguous regions; 0 of 1 when unrestricted). See WithRegion.
func (p *Pool) Region() (index, count int) {
	return p.base.regionIndex, p.base.regionCount
}

// Replication returns how many regions replicate each key (1 when
// unreplicated). See WithReplication.
func (p *Pool) Replication() int { return p.base.replication }

// Owns reports whether this pool's region is in key's replica set (with
// replication 1, whether it is key's primary owner). Unrestricted pools
// own everything.
func (p *Pool) Owns(key ID) bool {
	return p.base.regionCount <= 1 ||
		Replicates(key, p.base.regionIndex, p.base.regionCount, p.base.replication)
}

// checkOwned refuses mutations for keys outside the pool's replica set:
// in a cluster those must be routed to a replica (internal/p2p), never
// applied locally where no other node would find them.
func (p *Pool) checkOwned(key ID) error {
	if p.Owns(key) {
		return nil
	}
	return fmt.Errorf("discovery: key %v belongs to region %d (replication %d), this pool owns region %d of %d",
		key, OwnerOf(key, p.base.regionCount), p.base.replication, p.base.regionIndex, p.base.regionCount)
}

// fnv1a hashes the key bytes with FNV-1a, the shard-routing hash.
func fnv1a(key ID) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// ShardOf returns the shard index owning key. The mapping depends only
// on the key bytes and the shard count.
func (p *Pool) ShardOf(key ID) int {
	return int(fnv1a(key) % uint64(len(p.shards)))
}

// AutoOrigin deterministically picks an entry node for key, for callers
// (like the daemon) that accept requests with no origin attached. The
// choice is spread uniformly and is independent of the shard mapping.
func (p *Pool) AutoOrigin(key ID) int {
	return int((fnv1a(key) >> 32) % uint64(p.ov.N()))
}

// Insert publishes key from origin via the owning shard. On a durable
// pool the operation is logged (and, per the fsync policy, made durable)
// before it executes; a logging failure returns the error with the
// engine untouched. In-memory pools never return an error.
func (p *Pool) Insert(origin int, key ID, value []byte) (InsertResult, error) {
	if err := p.checkOwned(key); err != nil {
		return InsertResult{}, err
	}
	s := &p.shards[p.ShardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hook != nil {
		if err := s.hook(opInsert, 0, uint32(origin), key, value); err != nil {
			return InsertResult{}, err
		}
	}
	s.inserts.Inc()
	return s.svc.Insert(origin, key, value), nil
}

// Lookup queries key from origin via the owning shard. Unlike Insert
// and Delete, lookups are deliberately NOT region-checked: a
// region-restricted pool answers a foreign key honestly from its local
// state (not found), because reads are harmless and refusing them would
// break inspection tooling. Callers that want cluster-wide reads must
// route lookups to the key's owning node (internal/p2p does this in
// front of the pool); a direct Lookup on a non-owner only reflects
// local state.
func (p *Pool) Lookup(origin int, key ID) LookupResult {
	s := &p.shards[p.ShardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lookups.Inc()
	res := s.svc.Lookup(origin, key)
	if res.Found {
		s.lookupsFound.Inc()
		s.replyHops.Add(uint64(res.FirstReplyHops))
	}
	return res
}

// Delete removes origin's replicas of key via the owning shard. Like
// Insert, durable pools log the deletion before applying it.
func (p *Pool) Delete(origin int, key ID) (int, error) {
	if err := p.checkOwned(key); err != nil {
		return 0, err
	}
	s := &p.shards[p.ShardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hook != nil {
		if err := s.hook(opDelete, 0, uint32(origin), key, nil); err != nil {
			return 0, err
		}
	}
	s.deletes.Inc()
	return s.svc.Delete(origin, key), nil
}

// BatchKind tags one operation of an ExecBatch.
type BatchKind uint8

// Batch operation kinds. The first three mirror Insert, Lookup and
// Delete; BatchPut is ImportReplica's batched twin — a direct replica
// placement at an explicit engine node, used by the cluster transfer
// and repair receive paths so a whole entry page imports under one
// shard-lock acquisition and one group-committed WAL append.
const (
	BatchInsert BatchKind = iota + 1
	BatchLookup
	BatchDelete
	BatchPut
)

// BatchOp is one operation of a shard batch executed by ExecBatch. Kind,
// Origin, Key and Value are the request; exactly one result field is
// filled on success, and Err reports a refused or failed operation (the
// other ops of the batch are unaffected). Node is the explicit engine
// node of a BatchPut placement and ignored otherwise.
type BatchOp struct {
	Kind   BatchKind
	Origin int
	Key    ID
	Value  []byte // insert payload; retained by the engine on success
	Node   int    // BatchPut only: engine node holding the replica

	Insert  InsertResult
	Lookup  LookupResult
	Removed int
	Err     error

	// skip marks a BatchPut whose exact replica (node, origin, value)
	// is already stored: it succeeds without a write-ahead record or an
	// engine write. Anti-entropy re-pulls the same pages over and over;
	// without this, every periodic pass would re-log the whole keyspace.
	skip bool
}

// ExecBatch executes ops — whose keys must all map to the same shard —
// in order under ONE shard-lock acquisition. On a durable pool every
// mutation of the batch is logged as a single multi-record write-ahead
// append covered by one shared fsync before any of them applies, so the
// per-mutation durability cost divides by the batch's mutation count
// while the write-ahead contract is untouched: a mutation whose record
// is not durable never executes and never acks. Results and errors land
// in the ops themselves. An op whose key maps to another shard, or whose
// mutation targets a foreign region, gets Err set and is skipped; a
// failed batch append fails every mutation of the batch (their outcome
// is unknown, exactly like a crash between append and ack) while
// lookups still execute.
//
// A batch is equivalent to issuing its ops back to back on the shard:
// intra-batch read-your-writes holds because mutations apply in batch
// order before any later lookup in the same batch runs.
func (p *Pool) ExecBatch(ops []BatchOp) {
	p.ExecBatchTimed(ops)
}

// ExecBatchTimed is ExecBatch, additionally reporting how long the batch
// spent in the write-ahead hook — the WAL append plus this batch's share
// of the group-commit fsync. It is 0 for in-memory pools and lookup-only
// batches, and feeds the tracing layer's wal_commit spans without the
// WAL needing to know about tracing.
func (p *Pool) ExecBatchTimed(ops []BatchOp) (walNanos int64) {
	if len(ops) == 0 {
		return 0
	}
	shard := p.ShardOf(ops[0].Key)
	s := &p.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()

	// The already-stored check below reads pre-batch engine state, so it
	// is only valid for a put no earlier op of this batch shadows: a
	// touched set guards that, allocated only when the batch has puts
	// (client insert/delete batches never pay for it).
	var touched map[ID]struct{}
	for i := range ops {
		if ops[i].Kind == BatchPut {
			touched = make(map[ID]struct{}, len(ops))
			break
		}
	}
	mutations := false
	for i := range ops {
		op := &ops[i]
		op.Err = nil
		if so := p.ShardOf(op.Key); so != shard {
			op.Err = fmt.Errorf("discovery: batch op %d: key %v maps to shard %d, batch executes on shard %d", i, op.Key, so, shard)
			continue
		}
		switch op.Kind {
		case BatchInsert, BatchDelete:
			if err := p.checkOwned(op.Key); err != nil {
				op.Err = err
				continue
			}
			mutations = true
			if touched != nil {
				touched[op.Key] = struct{}{}
			}
		case BatchPut:
			if err := p.checkOwned(op.Key); err != nil {
				op.Err = err
				continue
			}
			if op.Node < 0 || op.Node >= p.ov.N() {
				op.Err = fmt.Errorf("discovery: batch op %d: import node %d out of range (overlay has %d nodes)", i, op.Node, p.ov.N())
				continue
			}
			op.skip = false
			if _, shadowed := touched[op.Key]; !shadowed {
				if r, ok := s.svc.eng.Stored(op.Node, op.Key); ok &&
					r.Origin == op.Origin && bytes.Equal(r.Value, op.Value) {
					// Byte-identical replica already stored (and already
					// durably logged when it first landed): succeed with
					// no write-ahead record and no engine write.
					op.skip = true
					continue
				}
			}
			mutations = true
			touched[op.Key] = struct{}{}
		case BatchLookup:
		default:
			op.Err = fmt.Errorf("discovery: batch op %d: unknown kind %d", i, op.Kind)
		}
	}
	if mutations && s.batch != nil {
		walStart := time.Now()
		err := s.batch(ops)
		walNanos = int64(time.Since(walStart))
		if err != nil {
			for i := range ops {
				op := &ops[i]
				if op.Err == nil && op.Kind != BatchLookup {
					op.Err = err
				}
			}
		}
	}
	for i := range ops {
		op := &ops[i]
		if op.Err != nil {
			continue
		}
		switch op.Kind {
		case BatchInsert:
			s.inserts.Inc()
			op.Insert = s.svc.Insert(op.Origin, op.Key, op.Value)
		case BatchLookup:
			s.lookups.Inc()
			op.Lookup = s.svc.Lookup(op.Origin, op.Key)
			if op.Lookup.Found {
				s.lookupsFound.Inc()
				s.replyHops.Add(uint64(op.Lookup.FirstReplyHops))
			}
		case BatchDelete:
			s.deletes.Inc()
			op.Removed = s.svc.Delete(op.Origin, op.Key)
		case BatchPut:
			if op.skip {
				continue // identical replica already stored and durable
			}
			// Direct placements are anti-entropy traffic, not client
			// requests, so like ImportReplica they skip the counters.
			op.Err = s.svc.eng.PutReplica(op.Node, mpil.Replica{Key: op.Key, Value: op.Value, Origin: op.Origin})
		}
	}
	return walNanos
}

// ImportReplica places a replica directly at engine node without routing,
// write-ahead logged on durable pools. It is the receive half of a
// cluster replica transfer (internal/p2p): the sender exports its exact
// placements and the receiver reproduces them, so lookups route to the
// same holders they did on the sender. The key must belong to this
// pool's region, and the pool retains value.
func (p *Pool) ImportReplica(node int, origin uint32, key ID, value []byte) error {
	if err := p.checkOwned(key); err != nil {
		return err
	}
	if node < 0 || node >= p.ov.N() {
		return fmt.Errorf("discovery: import node %d out of range (overlay has %d nodes)", node, p.ov.N())
	}
	s := &p.shards[p.ShardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hook != nil {
		if err := s.hook(opPut, uint32(node), origin, key, value); err != nil {
			return err
		}
	}
	return s.svc.eng.PutReplica(node, mpil.Replica{Key: key, Value: value, Origin: int(origin)})
}

// ReplicaEntry is one direct replica placement applied by ImportBatch:
// ImportReplica's arguments in batch form.
type ReplicaEntry struct {
	Node   int
	Origin uint32
	Key    ID
	Value  []byte // retained by the pool on success
}

// ImportBatch places a batch of replicas directly at their engine nodes,
// grouping entries by owning shard so each group applies under ONE
// shard-lock acquisition and — on durable pools — ONE group-committed
// write-ahead append, instead of ImportReplica's per-entry lock and
// fsync rounds. It is the receive half of a batched cluster transfer
// (TTransfer / TRepairOK pages in internal/p2p).
//
// The result state is exactly what applying the entries one by one
// through ImportReplica would produce: placement order within a shard is
// preserved, and a refused entry (foreign region, node out of range)
// skips only itself. accepted counts the entries the pool now holds —
// including entries whose byte-identical replica was already stored,
// which succeed without a write-ahead record or engine write — so a
// transfer sender may drop its copy of every accepted entry. fresh
// counts the subset that actually mutated state: anti-entropy uses it
// to tell a converging pull from a steady-state re-walk. firstErr is
// the first refusal or failure encountered, nil when every entry
// landed. A failed group append fails that whole group — none of its
// entries is known durable, so none of them executes.
func (p *Pool) ImportBatch(entries []ReplicaEntry) (accepted, fresh int, firstErr error) {
	if len(entries) == 0 {
		return 0, 0, nil
	}
	byShard := make([][]BatchOp, len(p.shards))
	for _, e := range entries {
		si := p.ShardOf(e.Key)
		byShard[si] = append(byShard[si], BatchOp{
			Kind:   BatchPut,
			Node:   e.Node,
			Origin: int(e.Origin),
			Key:    e.Key,
			Value:  e.Value,
		})
	}
	for _, ops := range byShard {
		if len(ops) == 0 {
			continue
		}
		p.ExecBatch(ops)
		for i := range ops {
			if ops[i].Err != nil {
				if firstErr == nil {
					firstErr = ops[i].Err
				}
				continue
			}
			accepted++
			if !ops[i].skip {
				fresh++
			}
		}
	}
	return accepted, fresh, firstErr
}

// DropReplica removes the replica of key stored at engine node, if any,
// write-ahead logged on durable pools. It is the send half of a replica
// transfer: once the owner has acknowledged the copy, the local one is
// dropped. Unlike Delete it is not origin-restricted and not routed, and
// it deliberately skips the region check — handing off foreign keys is
// its purpose.
func (p *Pool) DropReplica(node int, key ID) (bool, error) {
	if node < 0 || node >= p.ov.N() {
		return false, fmt.Errorf("discovery: drop node %d out of range (overlay has %d nodes)", node, p.ov.N())
	}
	s := &p.shards[p.ShardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.svc.eng.Stored(node, key); !ok {
		return false, nil
	}
	if s.hook != nil {
		if err := s.hook(opDrop, uint32(node), 0, key, nil); err != nil {
			return false, err
		}
	}
	return s.svc.eng.RemoveReplica(node, key), nil
}

// ForEachReplica visits every stored replica across all shards, locking
// each shard in turn. The value slice aliases engine storage and must be
// treated as read-only; it remains valid after the callback returns
// (engine storage never mutates stored bytes).
func (p *Pool) ForEachReplica(fn func(node int, origin uint32, key ID, value []byte)) {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		s.svc.eng.ForEachReplica(func(node int, r mpil.Replica) {
			fn(node, uint32(r.Origin), r.Key, r.Value)
		})
		s.mu.Unlock()
	}
}

// ReplicaCursor marks a resume position in the pool's stable replica
// iteration order: shard ascending, then engine node ascending, then key
// ascending. The zero cursor is the start of the store. Cursors are
// meaningful across calls (and across processes with the same pool
// parameters) because the order depends only on the shard mapping and
// the key bytes, never on map iteration order.
type ReplicaCursor struct {
	Shard uint32
	Node  uint32
	Key   ID
}

// ForEachReplicaFrom visits stored replicas in stable (shard, node, key)
// order starting at the first position at or after cur, locking one
// shard at a time. fn returning false stops the walk at that replica:
// shards and nodes past the stop point are never visited and their locks
// never taken, which is what makes a byte-budgeted caller (peer repair)
// cheap on a large store. next is the cursor of the first unvisited
// replica — the one fn rejected — so passing it back resumes the walk
// there; done reports that the walk reached the end of the store
// instead. Values alias engine storage, exactly as in ForEachReplica.
//
// Replicas added or removed between paginated calls may be missed or
// revisited, as with any cursor over live state; anti-entropy converges
// by re-running.
func (p *Pool) ForEachReplicaFrom(cur ReplicaCursor, fn func(node int, origin uint32, key ID, value []byte) bool) (next ReplicaCursor, done bool) {
	// Cursors arrive off the wire (peer repair): a shard at or past the
	// end means the walk is over, and the explicit >= guard also keeps a
	// hostile cursor from going negative through int() on 32-bit builds.
	if cur.Shard >= uint32(len(p.shards)) {
		return ReplicaCursor{}, true
	}
	for si := int(cur.Shard); si < len(p.shards); si++ {
		fromNode, fromKey := 0, ID{}
		if si == int(cur.Shard) {
			fromNode, fromKey = int(cur.Node), cur.Key
		}
		s := &p.shards[si]
		s.mu.Lock()
		var stopNode int
		var stopKey ID
		complete := s.svc.eng.ForEachReplicaFrom(fromNode, fromKey, func(node int, r mpil.Replica) bool {
			if !fn(node, uint32(r.Origin), r.Key, r.Value) {
				stopNode, stopKey = node, r.Key
				return false
			}
			return true
		})
		s.mu.Unlock()
		if !complete {
			return ReplicaCursor{Shard: uint32(si), Node: uint32(stopNode), Key: stopKey}, false
		}
	}
	return ReplicaCursor{}, true
}

// ReplicaCount returns the pool-wide stored replica total.
func (p *Pool) ReplicaCount() int { return p.replicaCount() }

// Holders returns the nodes storing key in its owning shard, ascending.
func (p *Pool) Holders(key ID) []int {
	s := &p.shards[p.ShardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.svc.Holders(key)
}

// Value returns the payload of key stored at node i, if any, consulting
// the shard that owns key.
func (p *Pool) Value(i int, key ID) ([]byte, bool) {
	s := &p.shards[p.ShardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.svc.Value(i, key)
}

// ShardStats is one shard's counter snapshot.
type ShardStats struct {
	Requests uint64
	Inserts  uint64
	Lookups  uint64
	Deletes  uint64
	// LookupsFound counts lookups that located a replica.
	LookupsFound uint64
	// LookupSuccessPct is the shard's lookup success rate in percent.
	LookupSuccessPct float64
	// MeanReplyHops is the mean first-reply hop count of successful
	// lookups.
	MeanReplyHops float64
}

// PoolStats aggregates the pool's counters, overall and per shard.
type PoolStats struct {
	Shards       int
	Requests     uint64
	Inserts      uint64
	Lookups      uint64
	Deletes      uint64
	LookupsFound uint64
	PerShard     []ShardStats
}

// exportShardLocked returns shard i's full replica state, sorted by
// (node, key) so identical states serialize to identical snapshot bytes.
// The values alias engine storage (which never mutates stored bytes);
// the caller holds the shard's lock.
func (p *Pool) exportShardLocked(i int) []snapshot.Entry {
	var out []snapshot.Entry
	p.shards[i].svc.eng.ForEachReplica(func(node int, r mpil.Replica) {
		out = append(out, snapshot.Entry{
			Node:   uint32(node),
			Origin: uint32(r.Origin),
			Key:    r.Key,
			Value:  r.Value,
		})
	})
	sort.Slice(out, func(a, b int) bool {
		if out[a].Node != out[b].Node {
			return out[a].Node < out[b].Node
		}
		return out[a].Key.Cmp(out[b].Key) < 0
	})
	return out
}

// restoreShard loads exported replica state back into shard i, placing
// each replica directly (no routing). Entries must come from a pool with
// the same overlay; nodes out of range are an error.
func (p *Pool) restoreShard(i int, entries []snapshot.Entry) error {
	s := &p.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		err := s.svc.eng.PutReplica(int(e.Node), mpil.Replica{
			Key:    e.Key,
			Value:  e.Value,
			Origin: int(e.Origin),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// applyShard re-executes one logged mutation on shard i during recovery.
// It bypasses the mutation hook (the record is already in the log), the
// region check (the log only ever holds keys the pool accepted), and the
// request counters (a replayed operation was served by a previous
// process, not this one).
func (p *Pool) applyShard(i int, kind opKind, node, origin uint32, key ID, value []byte) error {
	s := &p.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	switch kind {
	case opInsert:
		s.svc.Insert(int(origin), key, value)
	case opDelete:
		s.svc.Delete(int(origin), key)
	case opPut:
		return s.svc.eng.PutReplica(int(node), mpil.Replica{Key: key, Value: value, Origin: int(origin)})
	case opDrop:
		s.svc.eng.RemoveReplica(int(node), key)
	}
	return nil
}

// replicaCount returns the pool-wide stored replica total, locking each
// shard in turn.
func (p *Pool) replicaCount() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		n += s.svc.eng.ReplicaCount()
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots every shard's counters. Counters are atomics in the
// pool's registry, so the snapshot takes no shard locks and is safe to
// call concurrently with traffic (individual counters are exact; cross-
// counter consistency is best-effort, as with any live scrape).
func (p *Pool) Stats() PoolStats {
	st := PoolStats{Shards: len(p.shards), PerShard: make([]ShardStats, len(p.shards))}
	for i := range p.shards {
		s := &p.shards[i]
		ss := ShardStats{
			Inserts:      s.inserts.Value(),
			Lookups:      s.lookups.Value(),
			Deletes:      s.deletes.Value(),
			LookupsFound: s.lookupsFound.Value(),
		}
		ss.Requests = ss.Inserts + ss.Lookups + ss.Deletes
		if ss.Lookups > 0 {
			ss.LookupSuccessPct = 100 * float64(ss.LookupsFound) / float64(ss.Lookups)
		}
		if ss.LookupsFound > 0 {
			ss.MeanReplyHops = float64(s.replyHops.Value()) / float64(ss.LookupsFound)
		}
		st.PerShard[i] = ss
		st.Requests += ss.Requests
		st.Inserts += ss.Inserts
		st.Lookups += ss.Lookups
		st.Deletes += ss.Deletes
		st.LookupsFound += ss.LookupsFound
	}
	return st
}
