package discovery

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"discovery/internal/snapshot"
)

// newDurableTestOverlay is the complete-overlay setup the concurrent
// pool tests use: lookup success is structural, so "every acked insert
// is findable" holds for any interleaving (see pool_test.go).
func newDurableTestOverlay(t testing.TB) *StaticOverlay {
	t.Helper()
	ov, err := CompleteOverlay(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ov
}

func openDurable(t testing.TB, ov Overlay, dir string, cfg DurableConfig) (*DurablePool, RecoveryStats) {
	t.Helper()
	cfg.Dir = dir
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	dp, stats, err := OpenDurablePool(ov, 4, cfg, WithSeed(1), WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}
	return dp, stats
}

// exportAll snapshots every shard's state for equality comparisons.
func exportAll(p *Pool) [][]snapshot.Entry {
	out := make([][]snapshot.Entry, p.NumShards())
	for i := range out {
		s := &p.shards[i]
		s.mu.Lock()
		out[i] = p.exportShardLocked(i)
		s.mu.Unlock()
	}
	return out
}

func TestDurablePoolRestartAfterClose(t *testing.T) {
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, stats := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	if stats.SnapshotEntries != 0 || stats.Replayed != 0 {
		t.Fatalf("fresh dir recovered something: %+v", stats)
	}
	const keys = 60
	for i := 0; i < keys; i++ {
		if _, err := dp.Insert(i%ov.N(), NewID(fmt.Sprintf("dur-%d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a few so replay covers both kinds.
	for i := 0; i < keys; i += 10 {
		if _, err := dp.Delete(i%ov.N(), NewID(fmt.Sprintf("dur-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	want := exportAll(dp.Pool)
	if err := dp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := dp.Insert(0, NewID("after-close"), []byte("v")); err == nil {
		t.Fatal("insert after Close succeeded")
	}

	dp2, stats2 := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	defer dp2.Close()
	// A graceful close snapshots every shard, so nothing replays.
	if stats2.Replayed != 0 {
		t.Fatalf("replayed %d records after clean close", stats2.Replayed)
	}
	if got := exportAll(dp2.Pool); !reflect.DeepEqual(got, want) {
		t.Fatal("state after clean restart differs")
	}
	// Deleted keys stay deleted; surviving keys stay findable.
	for i := 1; i < keys; i++ {
		res := dp2.Lookup((i*31)%ov.N(), NewID(fmt.Sprintf("dur-%d", i)))
		if want := i%10 != 0; res.Found != want {
			t.Errorf("key %d found=%v after restart, want %v", i, res.Found, want)
		}
	}
}

func TestDurablePoolCrashReplay(t *testing.T) {
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	const keys = 40
	for i := 0; i < keys; i++ {
		if _, err := dp.Insert(i%ov.N(), NewID(fmt.Sprintf("crash-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	want := exportAll(dp.Pool)
	// No Close: simulate a crash by abandoning the pool. Every insert
	// above was acked, and FsyncBatch means acked ⇒ durable, so a fresh
	// open must rebuild the exact state from the log alone.
	dp2, stats := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	defer dp2.Close()
	if stats.Replayed != keys {
		t.Fatalf("replayed %d records, want %d", stats.Replayed, keys)
	}
	if stats.SnapshotEntries != 0 {
		t.Fatalf("loaded %d snapshot entries, want 0", stats.SnapshotEntries)
	}
	if got := exportAll(dp2.Pool); !reflect.DeepEqual(got, want) {
		t.Fatal("state after crash replay differs from the acked state")
	}
}

func TestDurablePoolTransferOpsSurviveCrash(t *testing.T) {
	// ImportReplica/DropReplica (the cluster replica-transfer primitives,
	// internal/p2p) are write-ahead logged as direct placements: replay
	// must reproduce them exactly without re-routing.
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	const keys = 30
	for i := 0; i < keys; i++ {
		key := NewID(fmt.Sprintf("xfer-%d", i))
		if err := dp.ImportReplica(i%ov.N(), uint32(i%7), key, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Drop a few, including one that was never stored (a no-op that must
	// not log anything).
	for i := 0; i < keys; i += 5 {
		dropped, err := dp.DropReplica(i%ov.N(), NewID(fmt.Sprintf("xfer-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if !dropped {
			t.Fatalf("drop %d reported absent", i)
		}
	}
	if dropped, err := dp.DropReplica(0, NewID("never-stored")); err != nil || dropped {
		t.Fatalf("phantom drop: %v %v", dropped, err)
	}
	want := exportAll(dp.Pool)
	// Crash: no Close. Replay must rebuild placements and drops alone.
	dp2, stats := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	defer dp2.Close()
	if wantReplay := keys + keys/5; stats.Replayed != wantReplay {
		t.Fatalf("replayed %d records, want %d", stats.Replayed, wantReplay)
	}
	if got := exportAll(dp2.Pool); !reflect.DeepEqual(got, want) {
		t.Fatal("transferred state after crash replay differs")
	}
	// The direct placements are now first-class state: findable via
	// routed lookups (the complete overlay reaches every holder).
	for i := 1; i < keys; i++ {
		if i%5 == 0 {
			continue
		}
		key := NewID(fmt.Sprintf("xfer-%d", i))
		if v, ok := dp2.Value(i%ov.N(), key); !ok || string(v) != fmt.Sprintf("payload-%d", i) {
			t.Errorf("imported replica %d missing after replay (ok=%v v=%q)", i, ok, v)
		}
	}
}

func TestDurablePoolSnapshotTruncatesLog(t *testing.T) {
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	// Tiny segments so snapshots actually free whole segments.
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncOff, SegmentBytes: 512})
	const keys = 80
	for i := 0; i < keys; i++ {
		if _, err := dp.Insert(i%ov.N(), NewID(fmt.Sprintf("snap-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot every shard synchronously (the background path runs the
	// same function off snapCh).
	for i := 0; i < dp.NumShards(); i++ {
		if err := dp.snapshotShard(i); err != nil {
			t.Fatal(err)
		}
	}
	// The safe truncation cutoff is min over shards of the snapshot seq,
	// so whole segments below it are gone; a tail whose records are all
	// snapshot-covered may remain.
	first, next := dp.log.Bounds()
	if first <= 1 {
		t.Fatalf("log not truncated after all-shard snapshots: [%d,%d)", first, next)
	}
	want := exportAll(dp.Pool)

	// Crash-reopen: recovery must come entirely from the snapshots.
	dp2, stats := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncOff, SegmentBytes: 512})
	defer dp2.Close()
	if stats.Replayed != 0 {
		t.Fatalf("replayed %d records, want 0 (snapshots cover all)", stats.Replayed)
	}
	if stats.SnapshotEntries == 0 {
		t.Fatal("no snapshot entries restored")
	}
	if got := exportAll(dp2.Pool); !reflect.DeepEqual(got, want) {
		t.Fatal("state after snapshot recovery differs")
	}
	// And mutations keep flowing with continuous sequence numbers.
	if _, err := dp2.Insert(3, NewID("post-snapshot"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, n2 := dp2.log.Bounds(); n2 != next+1 {
		t.Fatalf("next seq after post-recovery insert = %d, want %d", n2, next+1)
	}
}

func TestDurablePoolSnapshotOverWAL(t *testing.T) {
	// Snapshot some shards but not others; recovery must mix restore
	// and replay correctly.
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	const keys = 50
	insert := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if _, err := dp.Insert(i%ov.N(), NewID(fmt.Sprintf("mix-%d", i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	insert(0, keys/2)
	for i := 0; i < dp.NumShards(); i += 2 {
		if err := dp.snapshotShard(i); err != nil {
			t.Fatal(err)
		}
	}
	insert(keys/2, keys)
	want := exportAll(dp.Pool)

	dp2, stats := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	defer dp2.Close()
	if stats.SnapshotEntries == 0 || stats.Replayed == 0 {
		t.Fatalf("expected mixed recovery, got %+v", stats)
	}
	if got := exportAll(dp2.Pool); !reflect.DeepEqual(got, want) {
		t.Fatal("mixed snapshot+replay recovery diverged")
	}
}

func TestDurablePoolConcurrent(t *testing.T) {
	// Concurrent writers over the durable pool: group commit, the
	// background snapshotter, and the hooks all race-tested together.
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch, SnapshotEvery: 16})
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := NewID(fmt.Sprintf("conc-%d-%d", w, i))
				if _, err := dp.Insert((w*per+i)%ov.N(), key, []byte("v")); err != nil {
					t.Errorf("worker %d insert %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Crash-reopen (no Close) and verify every acked insert is findable.
	dp2, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	defer dp2.Close()
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			key := NewID(fmt.Sprintf("conc-%d-%d", w, i))
			if res := dp2.Lookup((w+i)%ov.N(), key); !res.Found {
				t.Errorf("acked key conc-%d-%d lost across crash", w, i)
			}
		}
	}
}

func TestDurablePoolManifestMismatch(t *testing.T) {
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncOff})
	dp.Close()

	// Different seed.
	if _, _, err := OpenDurablePool(ov, 4, DurableConfig{Dir: dir}, WithSeed(2), WithMaxHops(8)); err == nil {
		t.Fatal("mismatched seed accepted")
	}
	// Different shard count.
	if _, _, err := OpenDurablePool(ov, 8, DurableConfig{Dir: dir}, WithSeed(1), WithMaxHops(8)); err == nil {
		t.Fatal("mismatched shard count accepted")
	}
	// Different overlay.
	ov2, err := CompleteOverlay(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDurablePool(ov2, 4, DurableConfig{Dir: dir}, WithSeed(1), WithMaxHops(8)); err == nil {
		t.Fatal("mismatched overlay accepted")
	}
	// A different region slice is a mismatch too: recovering another
	// region's data into this node would strand it.
	if _, _, err := OpenDurablePool(ov, 4, DurableConfig{Dir: dir}, WithSeed(1), WithMaxHops(8), WithRegion(1, 3)); err == nil {
		t.Fatal("mismatched region accepted")
	}
	// The original parameters still open fine.
	dp2, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncOff})
	dp2.Close()
}

func TestDurablePoolAcceptsLegacyV1Manifest(t *testing.T) {
	// A pre-region (v1) data directory is semantically a v2 directory
	// with the unrestricted region 0/1: an unrestricted pool must accept
	// and upgrade it; a region-restricted pool must refuse it.
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncOff})
	if _, err := dp.Insert(0, NewID("legacy-key"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	dp.Close()

	// Rewrite the manifest as the previous release wrote it.
	legacy := legacyManifestFor(dp.Pool)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	dp2, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncOff})
	if res := dp2.Lookup(1, NewID("legacy-key")); !res.Found {
		t.Fatal("state behind a v1 manifest not recovered")
	}
	dp2.Close()
	// The manifest was upgraded in place.
	got, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != manifestFor(dp.Pool) {
		t.Fatalf("manifest not upgraded to v2:\n%s", got)
	}

	// Regioned pools refuse v1 directories outright.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDurablePool(ov, 4, DurableConfig{Dir: dir}, WithSeed(1), WithMaxHops(8), WithRegion(0, 2)); err == nil {
		t.Fatal("region-restricted pool accepted a v1 manifest")
	}
}

func TestDurablePoolAcceptsV2Manifest(t *testing.T) {
	// A pre-replication (v2) data directory is semantically a v3
	// directory with replication 1: an unreplicated pool must accept and
	// upgrade it; a replicated pool must refuse it.
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncOff})
	if _, err := dp.Insert(0, NewID("v2-key"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	dp.Close()

	v2 := v2ManifestFor(dp.Pool)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(v2), 0o644); err != nil {
		t.Fatal(err)
	}

	dp2, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncOff})
	if res := dp2.Lookup(1, NewID("v2-key")); !res.Found {
		t.Fatal("state behind a v2 manifest not recovered")
	}
	dp2.Close()
	got, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != manifestFor(dp.Pool) {
		t.Fatalf("manifest not upgraded to v3:\n%s", got)
	}

	// Replicated pools refuse v2 directories: a directory populated
	// under replication 1 may lack the extra regions this node now
	// replicates, so convergence must go through anti-entropy, not a
	// silent manifest upgrade.
	ovR, err := CompleteOverlay(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	dirR := t.TempDir()
	dpR, _, err := OpenDurablePool(ovR, 2, DurableConfig{Dir: dirR, Fsync: FsyncOff},
		WithRegion(0, 3), WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	dpR.Close()
	if err := os.WriteFile(filepath.Join(dirR, manifestName), []byte(v2ManifestFor(dpR.Pool)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDurablePool(ovR, 2, DurableConfig{Dir: dirR, Fsync: FsyncOff},
		WithRegion(0, 3), WithReplication(2)); err == nil {
		t.Fatal("replicated pool accepted a v2 manifest")
	}
}

// TestDurablePoolExecBatchCrashReplay pins the batched write-ahead
// contract: every mutation of an ExecBatch is logged (one multi-record
// append, one shared fsync) before any of them applies, so a crash after
// the batch returns loses nothing and replay rebuilds the exact state.
func TestDurablePoolExecBatchCrashReplay(t *testing.T) {
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})

	var keys []ID
	for i := 0; len(keys) < 24; i++ {
		k := NewID(fmt.Sprintf("batch-crash-%d", i))
		if dp.ShardOf(k) == 0 {
			keys = append(keys, k)
		}
	}
	var ops []BatchOp
	for i, k := range keys {
		ops = append(ops, BatchOp{Kind: BatchInsert, Origin: i % ov.N(), Key: k, Value: []byte(fmt.Sprintf("v-%d", i))})
	}
	for i, k := range keys {
		ops = append(ops, BatchOp{Kind: BatchLookup, Origin: i % ov.N(), Key: k})
	}
	for i, k := range keys[:6] {
		ops = append(ops, BatchOp{Kind: BatchDelete, Origin: i % ov.N(), Key: k})
	}
	dp.ExecBatch(ops)
	for i := range ops {
		if ops[i].Err != nil {
			t.Fatalf("batch op %d: %v", i, ops[i].Err)
		}
	}
	want := exportAll(dp.Pool)

	// No Close: the pool is abandoned mid-flight. Only the mutations were
	// logged — lookups leave no records — and all of them were covered by
	// the batch's shared fsync before ExecBatch returned.
	dp2, stats := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	defer dp2.Close()
	if wantReplayed := len(keys) + 6; stats.Replayed != wantReplayed {
		t.Fatalf("replayed %d records, want %d (lookups must not be logged)", stats.Replayed, wantReplayed)
	}
	if got := exportAll(dp2.Pool); !reflect.DeepEqual(got, want) {
		t.Fatal("state after batched crash replay differs from the acked state")
	}
	for i, k := range keys {
		res := dp2.Lookup(i%ov.N(), k)
		if want := i >= 6; res.Found != want {
			t.Errorf("key %d found=%v after crash replay, want %v", i, res.Found, want)
		}
	}
}

// TestDurablePoolExecBatchSharesOneAppend pins the shared-commit shape:
// a batch of N mutations consumes exactly N consecutive log sequence
// numbers via one AppendBatch, not N separate append+fsync rounds.
func TestDurablePoolExecBatchSharesOneAppend(t *testing.T) {
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	defer dp.Close()

	var keys []ID
	for i := 0; len(keys) < 16; i++ {
		k := NewID(fmt.Sprintf("batch-one-append-%d", i))
		if dp.ShardOf(k) == 0 {
			keys = append(keys, k)
		}
	}
	ops := make([]BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = BatchOp{Kind: BatchInsert, Origin: i % ov.N(), Key: k, Value: []byte("v")}
	}
	before, _ := dp.log.Bounds()
	dp.ExecBatch(ops)
	_, after := dp.log.Bounds()
	if int(after-before) != len(keys) {
		t.Fatalf("batch logged %d records, want %d", after-before, len(keys))
	}
	for i := range ops {
		if ops[i].Err != nil {
			t.Fatalf("batch op %d: %v", i, ops[i].Err)
		}
	}
}

// TestDurablePoolImportBatchCrashReplay pins the batched transfer-apply
// durability contract: every entry of an acked ImportBatch is recovered
// as the exact direct placement it was (no re-routing), from the log
// alone after a crash.
func TestDurablePoolImportBatchCrashReplay(t *testing.T) {
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})

	var entries []ReplicaEntry
	for i := 0; i < 48; i++ {
		entries = append(entries, ReplicaEntry{
			Node:   i % ov.N(),
			Origin: uint32(i % 5),
			Key:    NewID(fmt.Sprintf("import-crash-%d", i)),
			Value:  []byte(fmt.Sprintf("payload-%d", i)),
		})
	}
	accepted, _, err := dp.ImportBatch(entries)
	if err != nil || accepted != len(entries) {
		t.Fatalf("ImportBatch: accepted %d, err %v", accepted, err)
	}
	want := exportAll(dp.Pool)

	// No Close: the batch was acked, FsyncBatch means acked ⇒ durable.
	dp2, stats := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	defer dp2.Close()
	if stats.Replayed != len(entries) {
		t.Fatalf("replayed %d records, want %d", stats.Replayed, len(entries))
	}
	if got := exportAll(dp2.Pool); !reflect.DeepEqual(got, want) {
		t.Fatal("state after batched-import crash replay differs from the acked state")
	}
	for _, e := range entries {
		if v, ok := dp2.Value(e.Node, e.Key); !ok || string(v) != string(e.Value) {
			t.Fatalf("entry at node %d missing after replay (ok=%v v=%q)", e.Node, ok, v)
		}
	}
}

// TestDurablePoolImportBatchSharesAppends pins the group-commit shape of
// the batched transfer apply: a batch of N same-shard entries consumes N
// consecutive log seqs via one AppendBatch per shard group, not N
// append+fsync rounds.
func TestDurablePoolImportBatchSharesAppends(t *testing.T) {
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	defer dp.Close()

	var entries []ReplicaEntry
	for i := 0; len(entries) < 16; i++ {
		k := NewID(fmt.Sprintf("import-one-append-%d", i))
		if dp.ShardOf(k) != 0 {
			continue
		}
		entries = append(entries, ReplicaEntry{Node: i % ov.N(), Origin: 1, Key: k, Value: []byte("v")})
	}
	before, _ := dp.log.Bounds()
	if accepted, _, err := dp.ImportBatch(entries); err != nil || accepted != len(entries) {
		t.Fatalf("ImportBatch: accepted %d, err %v", accepted, err)
	}
	_, after := dp.log.Bounds()
	if int(after-before) != len(entries) {
		t.Fatalf("batch logged %d records, want %d", after-before, len(entries))
	}
}

// TestDurablePoolFsyncFailureNeverAcks proves the poison-on-sync-error
// contract end to end through DurablePool: once the injected fsync
// failure fires, the failing mutation is rejected (never acked) and
// never applied to the engine — the write-ahead hook runs before apply
// — and the log refuses every further append, even after the injected
// fault is lifted. A fresh reopen without the hook recovers cleanly and
// serves every previously-acked key.
func TestDurablePoolFsyncFailureNeverAcks(t *testing.T) {
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	var fail atomic.Bool
	cfg := DurableConfig{
		Dir:   dir,
		Fsync: FsyncAlways,
		Logf:  t.Logf,
		WALSyncErr: func() error {
			if fail.Load() {
				return fmt.Errorf("chaos: injected fsync failure")
			}
			return nil
		},
	}
	dp, _, err := OpenDurablePool(ov, 4, cfg, WithSeed(1), WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}
	acked := NewID("fsync-acked")
	if _, err := dp.Insert(0, acked, []byte("safe")); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}

	fail.Store(true)
	lost := NewID("fsync-lost")
	if _, err := dp.Insert(1, lost, []byte("gone")); err == nil {
		t.Fatal("insert through failed fsync was acked")
	}
	// Write-ahead: the failed append aborted the mutation before apply.
	if res := dp.Lookup(2, lost); res.Found {
		t.Fatal("failed-sync insert is visible in the engine")
	}
	// Poisoned log refuses further appends — including after the
	// injected fault heals. Only a restart (recovery) clears it.
	if _, err := dp.Insert(2, NewID("fsync-refused"), []byte("no")); err == nil {
		t.Fatal("insert on poisoned log was acked")
	}
	fail.Store(false)
	if _, err := dp.Insert(3, NewID("fsync-still-refused"), []byte("no")); err == nil {
		t.Fatal("insert after fault heal was acked; poison must be sticky")
	}
	// Reads keep working on the poisoned pool.
	if res := dp.Lookup(3, acked); !res.Found {
		t.Fatal("acked key unreadable on poisoned pool")
	}
	dp.Close()

	dp2, _, err := OpenDurablePool(ov, 4, DurableConfig{Dir: dir, Fsync: FsyncAlways, Logf: t.Logf}, WithSeed(1), WithMaxHops(8))
	if err != nil {
		t.Fatalf("reopen after poison: %v", err)
	}
	defer dp2.Close()
	if res := dp2.Lookup(1, acked); !res.Found {
		t.Fatal("acked key lost across poison + restart")
	}
	if _, err := dp2.Insert(0, NewID("fsync-after-recovery"), []byte("v")); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}

// TestDurablePoolImportBatchIdenticalReplayWritesNothing proves the
// skip-identical import at the durability layer: after a batch lands,
// re-importing it byte-identically appends NOTHING to the write-ahead
// log. The proof arms the injectable fsync-failure hook — any append
// would poison the log and error — and the replay must still succeed,
// while a genuinely changed entry under the same hook must fail.
func TestDurablePoolImportBatchIdenticalReplayWritesNothing(t *testing.T) {
	ov := newDurableTestOverlay(t)
	dir := t.TempDir()
	var failSync atomic.Bool
	dp, _ := openDurable(t, ov, dir, DurableConfig{
		Fsync: FsyncAlways,
		WALSyncErr: func() error {
			if failSync.Load() {
				return errors.New("injected fsync failure")
			}
			return nil
		},
	})
	defer dp.Close()

	var entries []ReplicaEntry
	for i := 0; i < 24; i++ {
		entries = append(entries, ReplicaEntry{
			Node: i % ov.N(), Origin: 1,
			Key: NewID(fmt.Sprintf("replay-durable-%d", i)), Value: []byte(fmt.Sprintf("v-%d", i)),
		})
	}
	if accepted, fresh, err := dp.ImportBatch(entries); err != nil || accepted != len(entries) || fresh != len(entries) {
		t.Fatalf("first import: accepted %d fresh %d err %v", accepted, fresh, err)
	}
	before, after := dp.log.Bounds()
	_ = before

	// Every fsync now fails. An identical replay must not notice: no
	// record is appended, so the poisoned-sync path never runs.
	failSync.Store(true)
	if accepted, fresh, err := dp.ImportBatch(entries); err != nil || accepted != len(entries) || fresh != 0 {
		t.Fatalf("identical replay under failing fsync: accepted %d fresh %d err %v", accepted, fresh, err)
	}
	if _, a := dp.log.Bounds(); a != after {
		t.Fatalf("identical replay appended to the log: seq %d -> %d", after, a)
	}

	// A changed entry DOES need an append, which must now fail — and
	// the write-ahead contract holds: the failed entry is not applied.
	changed := []ReplicaEntry{{Node: entries[5].Node, Origin: 1, Key: entries[5].Key, Value: []byte("new")}}
	if _, _, err := dp.ImportBatch(changed); err == nil {
		t.Fatal("changed import under failing fsync succeeded")
	}
	if v, ok := dp.Value(changed[0].Node, changed[0].Key); !ok || string(v) == "new" {
		t.Fatalf("failed import applied anyway: ok=%v v=%q", ok, v)
	}
}
